"""Tests for the unified EngineConfig, priority preemption and the HTTP front end.

Pins the API-redesign invariants:

* :class:`~repro.serving.EngineConfig` is the single validated config: bad
  fields raise before any engine resource exists (the AsyncEngine
  leak-regression), legacy kwargs fold in with a ``DeprecationWarning``,
  JSON round-trips exactly, and every constructor accepts ``config=``;
* the prefix pool's eviction pins protect a preempted request's resume
  state from LRU pressure and die with the entry that holds them;
* preemption retires a low-priority decoding row to the pool and resumes
  it later with greedy output *token-identical* to an uninterrupted run,
  leaking no rows, queue slots or pins — and strictly-higher priority is
  the only thing that ever preempts;
* the HTTP server speaks real HTTP/1.1 over asyncio streams: unary JSON,
  SSE parsed frame by frame by an actual client loop, per-tenant
  token-bucket 429s and queue-depth shedding with well-formed
  ``Retry-After``, Prometheus ``/metrics`` and ``/healthz``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import warnings

import numpy as np
import pytest

from repro.models import DecoderLM, get_config
from repro.tensor import no_grad
from repro.serving import (
    AsyncEngine,
    BatchScheduler,
    ContinuousBatchingEngine,
    EngineConfig,
    HttpServer,
    PrefixCachePool,
    TokenBucket,
)

VOCAB = 64


@pytest.fixture(scope="module")
def model():
    m = DecoderLM(get_config("gpt2"), VOCAB, rng=0)
    m.eval()
    return m


def prompt_of(n: int, seed: int = 17) -> np.ndarray:
    return np.random.default_rng(seed).integers(1, VOCAB, size=n)


# ---------------------------------------------------------------------- #
# EngineConfig: the unified, validated configuration object
# ---------------------------------------------------------------------- #
class TestEngineConfig:
    @pytest.mark.parametrize(
        "field, value, message",
        [
            ("max_batch_rows", 0, "max_batch_rows must be positive"),
            ("admit_deadline", -0.1, "admit_deadline must be >= 0"),
            ("min_admit_rows", 0, "min_admit_rows must lie in"),
            ("min_admit_rows", 9, "min_admit_rows must lie in"),
            ("prefill_chunk_tokens", 0, "prefill_chunk_tokens must be positive"),
            ("kv_layout", "sparse", "kv_layout"),
            ("kv_dtype", "fp64", "kv_dtype"),
            ("draft_k", 0, "draft_k must be positive"),
        ],
    )
    def test_validation_raises_at_construction(self, field, value, message):
        with pytest.raises(ValueError, match=message):
            EngineConfig(**{field: value})

    def test_frozen_and_replace(self):
        config = EngineConfig(max_batch_rows=4)
        with pytest.raises(Exception):  # FrozenInstanceError
            config.max_batch_rows = 8
        bigger = config.replace(max_batch_rows=16)
        assert bigger.max_batch_rows == 16 and config.max_batch_rows == 4
        with pytest.raises(ValueError):
            config.replace(max_batch_rows=-1)  # replace re-validates

    def test_from_kwargs_folds_legacy_with_deprecation_warning(self):
        kwargs = {"max_batch_rows": 3, "kv_layout": "paged"}
        with pytest.warns(DeprecationWarning, match="deprecated"):
            config = EngineConfig.from_kwargs(kwargs, owner="test")
        assert config.max_batch_rows == 3 and config.kv_layout == "paged"
        assert not kwargs  # consumed destructively

    def test_from_kwargs_rejects_unknown_and_mixed(self):
        with pytest.raises(TypeError, match="unexpected keyword arguments: max_rowz"):
            EngineConfig.from_kwargs({"max_rowz": 3}, owner="test")
        with pytest.raises(TypeError, match="both config= and legacy"):
            EngineConfig.from_kwargs(
                {"max_batch_rows": 3}, base=EngineConfig(), owner="test"
            )

    def test_from_kwargs_passthrough_no_warning(self):
        base = EngineConfig(max_batch_rows=5)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert EngineConfig.from_kwargs({}, base=base) is base
            assert EngineConfig.from_kwargs({}) == EngineConfig()

    def test_json_round_trip(self):
        config = EngineConfig(
            max_batch_rows=6,
            min_admit_rows=2,
            prefill_chunk_tokens=16,
            kv_layout="paged",
            kv_dtype="int8",
            draft_model="tiny-draft",
            allow_preemption=False,
        )
        assert EngineConfig.from_json(config.to_json()) == config

    def test_json_rejects_live_model_and_unknown_keys(self, model):
        with pytest.raises(ValueError, match="live model instance"):
            EngineConfig(draft_model=model).to_json()
        with pytest.raises(ValueError, match="unknown engine config keys: max_rowz"):
            EngineConfig.from_json('{"max_rowz": 3}')
        with pytest.raises(ValueError, match="must be an object"):
            EngineConfig.from_json("[1, 2]")


class TestConfigPlumbing:
    def test_engine_accepts_config_object(self, model):
        config = EngineConfig(max_batch_rows=2, min_admit_rows=2, kv_layout="paged")
        engine = ContinuousBatchingEngine(model, config=config)
        assert engine.config is config
        assert engine.max_batch_rows == 2
        assert engine.min_admit_rows == 2
        assert engine.kv_layout == "paged"

    def test_engine_legacy_kwargs_warn_but_work(self, model):
        with pytest.warns(DeprecationWarning):
            engine = ContinuousBatchingEngine(model, max_batch_rows=3)
        assert engine.max_batch_rows == 3
        with pytest.raises(TypeError, match="unexpected keyword"):
            ContinuousBatchingEngine(model, max_batch_rowz=3)

    def test_scheduler_accepts_config(self, model):
        with BatchScheduler(model, config=EngineConfig(max_batch_rows=3)) as sched:
            assert sched.max_batch_size == 3
            assert sched.aio.config.max_batch_rows == 3

    def test_async_engine_bad_config_leaks_nothing(self, model):
        """Validation must precede resource allocation: a bad config leaves
        no stepping thread and registers no process-wide shared pool."""
        from repro.serving.pool import _SHARED_POOLS

        victim = DecoderLM(get_config("gpt2"), VOCAB, rng=1)
        victim.eval()
        threads_before = threading.active_count()
        with pytest.raises(ValueError, match="max_batch_rows must be positive"):
            with pytest.warns(DeprecationWarning):
                AsyncEngine(victim, max_batch_rows=0)
        assert victim not in _SHARED_POOLS
        assert threading.active_count() == threads_before


# ---------------------------------------------------------------------- #
# pool pinning
# ---------------------------------------------------------------------- #
class TestPoolPinning:
    def _seed(self, pool, model, n, seed):
        ids = prompt_of(n, seed)
        cache, _ = pool.checkout(ids)
        with no_grad():
            model.forward_incremental(ids[None, :], cache)
        pool.checkin(ids, cache)
        return ids

    def test_pin_protects_from_lru_eviction(self, model):
        pool = PrefixCachePool(model, max_entries=2, min_reuse_tokens=4)
        pinned_ids = self._seed(pool, model, 8, seed=1)
        assert pool.pin(pinned_ids)
        assert pool.pinned_entries == 1
        # Two more distinct families would evict the LRU entry — but it is
        # pinned, so the *next* oldest unpinned entry goes instead.
        self._seed(pool, model, 8, seed=2)
        self._seed(pool, model, 8, seed=3)
        assert pool.peek(pinned_ids) == 8  # still resident
        assert pool.stats.evictions >= 1
        assert pool.unpin(pinned_ids)
        assert not pool.unpin(pinned_ids)  # idempotent
        assert pool.pinned_entries == 0

    def test_pin_unknown_prefix_is_false(self, model):
        pool = PrefixCachePool(model, max_entries=2, min_reuse_tokens=4)
        assert not pool.pin(prompt_of(8, seed=9))

    def test_consuming_checkout_discards_pin(self, model):
        pool = PrefixCachePool(model, max_entries=2, min_reuse_tokens=4)
        ids = self._seed(pool, model, 8, seed=1)
        assert pool.pin(ids)
        cache, reused = pool.checkout(ids)  # full coverage: consumes entry
        assert reused == 8
        assert pool.pinned_entries == 0

    def test_clear_drops_pins(self, model):
        pool = PrefixCachePool(model, max_entries=2, min_reuse_tokens=4)
        ids = self._seed(pool, model, 8, seed=1)
        assert pool.pin(ids)
        pool.clear()
        assert pool.pinned_entries == 0 and len(pool) == 0


# ---------------------------------------------------------------------- #
# priority scheduling and preemption (sync engine)
# ---------------------------------------------------------------------- #
def drain_done(engine):
    """Drain and assert no rows, queue slots or pins leak."""
    finished = engine.drain()
    assert engine.batch.num_rows == 0
    assert engine.batch.cache.batch_size == 0
    assert not engine._live and engine.num_queued == 0
    if engine.cache_pool is not None:
        assert engine.cache_pool.pinned_entries == 0
    return finished


class TestPriorityScheduling:
    def test_priority_orders_admission(self, model):
        engine = ContinuousBatchingEngine(model, config=EngineConfig(max_batch_rows=1))
        low = engine.submit(prompt_of(6, 1), max_new_tokens=2, priority=0)
        high = engine.submit(prompt_of(6, 2), max_new_tokens=2, priority=5)
        engine.step(force_admit=True)
        # The later-submitted high-priority request got the lone row.
        assert high.state.admitted and not low.state.admitted
        drain_done(engine)

    def test_fifo_within_priority_class(self, model):
        """A tight deadline must not leapfrog earlier same-priority arrivals."""
        engine = ContinuousBatchingEngine(model, config=EngineConfig(max_batch_rows=1))
        first = engine.submit(prompt_of(6, 1), max_new_tokens=2)
        engine.submit(prompt_of(6, 2), max_new_tokens=2, deadline=engine.clock() + 0.01)
        engine.step(force_admit=True)
        assert first.state.admitted
        drain_done(engine)

    def test_preempt_resume_is_token_identical(self, model):
        pool = PrefixCachePool(model, max_entries=8, min_reuse_tokens=4)
        engine = ContinuousBatchingEngine(
            model, config=EngineConfig(max_batch_rows=1), cache_pool=pool
        )
        victim_prompt = prompt_of(6, 3)
        victim = engine.submit(victim_prompt, max_new_tokens=12, priority=0)
        for _ in range(5):
            engine.step(force_admit=True)
        assert victim.state.gen_len >= 4  # mid-decode
        urgent = engine.submit(prompt_of(6, 4), max_new_tokens=4, priority=5)
        engine.step(force_admit=True)
        assert victim.preemptions == 1
        assert engine.stats.preemptions == 1
        assert pool.pinned_entries == 1  # resume state pinned while queued
        assert urgent.state.admitted
        finished = drain_done(engine)
        assert {r.request_id for r in finished} >= {victim.request_id, urgent.request_id}
        assert engine.stats.resumes == 1
        expected = model.generate(victim_prompt, max_new_tokens=12)
        np.testing.assert_array_equal(victim.result, expected)
        # The full-token view is stable across the mid-flight state swap.
        np.testing.assert_array_equal(
            victim.generated_ids(), expected[len(victim_prompt):]
        )

    def test_preempt_resume_token_identical_paged_int8(self, model):
        """The CoW block-table extraction path: paged layout, quantized KV."""
        pool = PrefixCachePool(
            model, max_entries=8, min_reuse_tokens=4, kv_layout="paged", kv_dtype="int8"
        )
        engine = ContinuousBatchingEngine(
            model,
            config=EngineConfig(max_batch_rows=1, kv_layout="paged", kv_dtype="int8"),
            cache_pool=pool,
        )
        victim_prompt = prompt_of(6, 3)
        victim = engine.submit(victim_prompt, max_new_tokens=12, priority=0)
        for _ in range(5):
            engine.step(force_admit=True)
        engine.submit(prompt_of(6, 4), max_new_tokens=4, priority=5)
        engine.step(force_admit=True)
        assert victim.preemptions == 1
        drain_done(engine)
        # Parity target is the same engine config *without* the preemption.
        replay = ContinuousBatchingEngine(
            model,
            config=EngineConfig(max_batch_rows=1, kv_layout="paged", kv_dtype="int8"),
        )
        baseline = replay.submit(victim_prompt, max_new_tokens=12)
        replay.drain()
        np.testing.assert_array_equal(victim.result, baseline.result)

    def test_preempt_without_pool_still_exact(self, model):
        engine = ContinuousBatchingEngine(model, config=EngineConfig(max_batch_rows=1))
        victim_prompt = prompt_of(6, 3)
        victim = engine.submit(victim_prompt, max_new_tokens=12, priority=0)
        for _ in range(5):
            engine.step(force_admit=True)
        engine.submit(prompt_of(6, 4), max_new_tokens=4, priority=5)
        engine.step(force_admit=True)
        assert victim.preemptions == 1
        drain_done(engine)
        np.testing.assert_array_equal(
            victim.result, model.generate(victim_prompt, max_new_tokens=12)
        )

    def test_equal_priorities_never_preempt(self, model):
        engine = ContinuousBatchingEngine(model, config=EngineConfig(max_batch_rows=1))
        engine.submit(prompt_of(6, 1), max_new_tokens=8, priority=3)
        for _ in range(3):
            engine.step(force_admit=True)
        engine.submit(prompt_of(6, 2), max_new_tokens=2, priority=3)
        engine.step(force_admit=True)
        assert engine.stats.preemptions == 0
        drain_done(engine)

    def test_allow_preemption_false_disables(self, model):
        engine = ContinuousBatchingEngine(
            model, config=EngineConfig(max_batch_rows=1, allow_preemption=False)
        )
        engine.submit(prompt_of(6, 1), max_new_tokens=8, priority=0)
        for _ in range(3):
            engine.step(force_admit=True)
        engine.submit(prompt_of(6, 2), max_new_tokens=2, priority=9)
        engine.step(force_admit=True)
        assert engine.stats.preemptions == 0
        drain_done(engine)

    def test_cancel_while_preempted_releases_pin(self, model):
        pool = PrefixCachePool(model, max_entries=8, min_reuse_tokens=4)
        engine = ContinuousBatchingEngine(
            model, config=EngineConfig(max_batch_rows=1), cache_pool=pool
        )
        victim = engine.submit(prompt_of(6, 3), max_new_tokens=12, priority=0)
        for _ in range(5):
            engine.step(force_admit=True)
        engine.submit(prompt_of(6, 4), max_new_tokens=4, priority=5)
        engine.step(force_admit=True)
        assert pool.pinned_entries == 1
        assert engine.cancel(victim)
        assert pool.pinned_entries == 0
        assert victim.finish_reason == "cancelled"
        drain_done(engine)

    def test_streaming_survives_preemption(self, model):
        """An async subscriber sees one seamless token stream across the
        victim's retire-to-pool / resume-from-pool round trip."""
        victim_prompt = prompt_of(6, 3)
        expected = model.generate(victim_prompt, max_new_tokens=12)
        with AsyncEngine(model, config=EngineConfig(max_batch_rows=1)) as engine:

            async def victim_client():
                tokens = []
                async for token in engine.stream(victim_prompt, max_new_tokens=12):
                    tokens.append(token)
                return tokens

            async def urgent_client():
                await asyncio.sleep(0.02)  # let the victim get mid-decode
                return await engine.generate(
                    prompt_of(6, 4), max_new_tokens=4, priority=5
                )

            async def main():
                return await asyncio.gather(victim_client(), urgent_client())

            streamed, _ = asyncio.run(main())
            np.testing.assert_array_equal(streamed, expected[len(victim_prompt):])


# ---------------------------------------------------------------------- #
# token bucket
# ---------------------------------------------------------------------- #
class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        retry = bucket.try_acquire()
        assert retry == pytest.approx(0.5)  # 1 token at 2/s
        now[0] += 0.5
        assert bucket.try_acquire() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="rate must be positive"):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError, match="burst must be >= 1"):
            TokenBucket(rate=1.0, burst=0.5)


# ---------------------------------------------------------------------- #
# HTTP front end
# ---------------------------------------------------------------------- #
async def http_call(server, method, path, body=None, read_timeout=30.0):
    """One raw HTTP/1.1 exchange; returns (status, headers, body_bytes)."""
    reader, writer = await asyncio.open_connection(server.host, server.port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: {server.host}\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), timeout=read_timeout)
    writer.close()
    await writer.wait_closed()
    header_blob, _, body_bytes = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body_bytes


def run_with_server(engine, coro_fn, **server_kwargs):
    """Start an HttpServer on an ephemeral port and run ``coro_fn(server)``."""

    async def main():
        async with HttpServer(engine, **server_kwargs) as server:
            return await coro_fn(server)

    return asyncio.run(main())


class TestHttpServer:
    def test_healthz_and_unknown_routes(self, model):
        with AsyncEngine(model, config=EngineConfig(max_batch_rows=2)) as engine:

            async def scenario(server):
                status, _, body = await http_call(server, "GET", "/healthz")
                assert status == 200
                assert json.loads(body) == {"status": "ok", "pending": 0}
                status, _, _ = await http_call(server, "POST", "/healthz", {})
                assert status == 405
                status, _, body = await http_call(server, "GET", "/nope")
                assert status == 404
                assert json.loads(body)["error"]["code"] == 404
                status, _, _ = await http_call(server, "GET", "/v1/generate")
                assert status == 405

            run_with_server(engine, scenario)

    def test_unary_generate_matches_model(self, model):
        prompt = prompt_of(7, 21)
        expected = model.generate(prompt, max_new_tokens=8)
        with AsyncEngine(model, config=EngineConfig(max_batch_rows=2)) as engine:

            async def scenario(server):
                status, headers, body = await http_call(
                    server,
                    "POST",
                    "/v1/generate",
                    {"prompt_ids": [int(t) for t in prompt], "max_new_tokens": 8},
                )
                assert status == 200
                assert headers["content-type"] == "application/json"
                payload = json.loads(body)
                assert payload["finish_reason"] == "length"
                assert payload["tokens"] == [int(t) for t in expected]
                assert payload["generated"] == [int(t) for t in expected[len(prompt):]]

            run_with_server(engine, scenario)

    @pytest.mark.parametrize(
        "body, message",
        [
            (None, "not valid JSON"),
            ({"prompt_ids": []}, "non-empty"),
            ({"prompt_ids": "abc"}, "non-empty list"),
            ({"prompt_ids": [1, "x"]}, "integers only"),
            ({"prompt_ids": [1, 2, 3], "timeout": 0}, "timeout must be positive"),
            ({"prompt_ids": [1, 2, 3], "stop_ids": 5}, "stop_ids must be a list"),
            ({"prompt_ids": [1, 2, 3], "max_new_tokens": "lots"}, "invalid literal"),
            ({"prompt_ids": [1] * 600}, "exceeds the model's maximum"),
        ],
    )
    def test_bad_generate_bodies_get_400(self, model, body, message):
        with AsyncEngine(model, config=EngineConfig(max_batch_rows=2)) as engine:

            async def scenario(server):
                if body is None:
                    reader, writer = await asyncio.open_connection(
                        server.host, server.port
                    )
                    raw = b"{nope"
                    writer.write(
                        (
                            f"POST /v1/generate HTTP/1.1\r\nHost: x\r\n"
                            f"Content-Length: {len(raw)}\r\nConnection: close\r\n\r\n"
                        ).encode()
                        + raw
                    )
                    await writer.drain()
                    response = await reader.read()
                    writer.close()
                    await writer.wait_closed()
                    status = int(response.split(b" ", 2)[1])
                    payload = json.loads(response.partition(b"\r\n\r\n")[2])
                else:
                    status, _, raw = await http_call(
                        server, "POST", "/v1/generate", body
                    )
                    payload = json.loads(raw)
                assert status == 400
                assert message in payload["error"]["message"]

            run_with_server(engine, scenario)

    def test_sse_stream_parsed_by_client_loop(self, model):
        prompt = prompt_of(7, 22)
        expected = [int(t) for t in model.generate(prompt, max_new_tokens=8)[len(prompt):]]
        with AsyncEngine(model, config=EngineConfig(max_batch_rows=2)) as engine:

            async def scenario(server):
                reader, writer = await asyncio.open_connection(server.host, server.port)
                payload = json.dumps(
                    {
                        "prompt_ids": [int(t) for t in prompt],
                        "max_new_tokens": 8,
                        "stream": True,
                    }
                ).encode()
                writer.write(
                    (
                        f"POST /v1/generate HTTP/1.1\r\nHost: x\r\n"
                        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
                    ).encode()
                    + payload
                )
                await writer.drain()
                status_line = await reader.readline()
                assert b"200" in status_line
                # headers end at the blank line
                while (await reader.readline()).strip():
                    pass
                tokens, frames, done = [], [], False
                while True:
                    line = await asyncio.wait_for(reader.readline(), timeout=30.0)
                    if not line:
                        break
                    text = line.decode().strip()
                    if not text.startswith("data: "):
                        assert text == ""  # SSE frame separator
                        continue
                    if text == "data: [DONE]":
                        done = True
                        continue
                    frame = json.loads(text[len("data: "):])
                    frames.append(frame)
                    if "token" in frame:
                        tokens.append(frame["token"])
                writer.close()
                await writer.wait_closed()
                assert done, "stream must end with the [DONE] sentinel"
                assert tokens == expected
                assert frames[0].keys() == {"request_id"}
                assert frames[-1]["done"] and frames[-1]["finish_reason"] == "length"

            run_with_server(engine, scenario)
            assert engine.num_pending == 0

    def test_rate_limit_429_with_retry_after(self, model):
        with AsyncEngine(model, config=EngineConfig(max_batch_rows=2)) as engine:

            async def scenario(server):
                body = {"prompt_ids": [1, 2, 3], "max_new_tokens": 2, "tenant": "t1"}
                status, _, _ = await http_call(server, "POST", "/v1/generate", body)
                assert status == 200
                status, headers, raw = await http_call(
                    server, "POST", "/v1/generate", body
                )
                assert status == 429
                assert int(headers["retry-after"]) >= 1
                error = json.loads(raw)["error"]
                assert error["retry_after"] >= 1 and "rate" in error["message"]
                # A different tenant is unaffected by t1's empty bucket.
                status, _, _ = await http_call(
                    server, "POST", "/v1/generate", {**body, "tenant": "t2"}
                )
                assert status == 200
                assert server.stats.rate_limited == 1

            run_with_server(engine, scenario, rate_limit=1.0, rate_burst=1.0)

    def test_overload_sheds_with_429(self, model):
        with AsyncEngine(model, config=EngineConfig(max_batch_rows=1)) as engine:

            async def scenario(server):
                slow = asyncio.create_task(
                    http_call(
                        server,
                        "POST",
                        "/v1/generate",
                        {"prompt_ids": [1, 2, 3], "max_new_tokens": 256},
                    )
                )
                # Wait until the slow request occupies the engine.
                while engine.num_pending == 0:
                    await asyncio.sleep(0.001)
                status, headers, raw = await http_call(
                    server,
                    "POST",
                    "/v1/generate",
                    {"prompt_ids": [4, 5, 6], "max_new_tokens": 2},
                )
                assert status == 429
                assert "retry-after" in headers
                assert "capacity" in json.loads(raw)["error"]["message"]
                assert server.stats.shed == 1
                status, _, _ = await slow
                assert status == 200

            run_with_server(engine, scenario, max_inflight=1)

    def test_metrics_prometheus_text(self, model):
        with AsyncEngine(model, config=EngineConfig(max_batch_rows=2)) as engine:

            async def scenario(server):
                await http_call(
                    server,
                    "POST",
                    "/v1/generate",
                    {"prompt_ids": [1, 2, 3, 4], "max_new_tokens": 3},
                )
                status, headers, body = await http_call(server, "GET", "/metrics")
                assert status == 200
                assert headers["content-type"].startswith("text/plain")
                text = body.decode()
                for metric in (
                    "repro_engine_requests 1",
                    "repro_engine_preemptions 0",
                    "repro_engine_resumes 0",
                    "repro_http_requests_total 2",
                    'repro_http_responses_total{code="200"} 1',
                    "repro_pool_pinned_entries 0",
                    "repro_http_inflight 0",
                ):
                    assert metric in text, f"missing {metric!r} in:\n{text}"
                # Every sample line is NAME{labels} VALUE with a float value.
                for line in text.splitlines():
                    if line.startswith("#") or not line:
                        continue
                    name, value = line.rsplit(" ", 1)
                    assert name and float(value) is not None

            run_with_server(engine, scenario)

    def test_timeout_surfaces_as_504(self, model):
        with AsyncEngine(model, config=EngineConfig(max_batch_rows=1)) as engine:

            async def scenario(server):
                blocker = asyncio.create_task(
                    http_call(
                        server,
                        "POST",
                        "/v1/generate",
                        {"prompt_ids": [1, 2, 3], "max_new_tokens": 128},
                    )
                )
                while engine.num_pending == 0:
                    await asyncio.sleep(0.001)
                status, _, raw = await http_call(
                    server,
                    "POST",
                    "/v1/generate",
                    {"prompt_ids": [4, 5, 6], "max_new_tokens": 64, "timeout": 0.01},
                )
                assert status == 504
                payload = json.loads(raw)
                assert "timed out" in payload["error"]["message"]
                assert payload["partial"] == []  # expired while queued
                await blocker

            run_with_server(engine, scenario, max_inflight=8)

    def test_server_validation(self, model):
        with AsyncEngine(model, config=EngineConfig(max_batch_rows=1)) as engine:
            with pytest.raises(ValueError, match="max_inflight must be positive"):
                HttpServer(engine, max_inflight=0)
            with pytest.raises(ValueError, match="rate_limit must be positive"):
                HttpServer(engine, rate_limit=-1.0)

    def test_priority_over_http_under_contention(self, model):
        """Under a saturated batch, high-priority requests finish with
        better latency than co-arriving low-priority ones."""
        config = EngineConfig(max_batch_rows=2)
        with AsyncEngine(model, config=config) as engine:

            async def client(server, i, priority):
                t0 = time.perf_counter()
                status, _, _ = await http_call(
                    server,
                    "POST",
                    "/v1/generate",
                    {
                        "prompt_ids": [int(t) for t in prompt_of(6, 30 + i)],
                        "max_new_tokens": 16,
                        "priority": priority,
                        "tenant": f"c{i}",
                    },
                )
                assert status == 200
                return time.perf_counter() - t0

            async def scenario(server):
                # Saturate with low-priority, then a high-priority burst.
                low = [asyncio.create_task(client(server, i, 0)) for i in range(4)]
                await asyncio.sleep(0.02)
                high = [
                    asyncio.create_task(client(server, 4 + i, 5)) for i in range(2)
                ]
                low_walls = await asyncio.gather(*low)
                high_walls = await asyncio.gather(*high)
                return low_walls, high_walls

            run_with_server(engine, scenario, max_inflight=16)
            assert engine.stats.finished == 6
