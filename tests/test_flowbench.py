"""Tests for the Flow-Bench substrate: workflows, anomalies, simulator, dataset, parsing."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flowbench import (
    AnomalySpec,
    WorkflowSimulator,
    build_1000genome_workflow,
    build_montage_workflow,
    build_sales_prediction_workflow,
    build_workflow,
    generate_dataset,
    generate_flowbench,
    parse_log_lines,
    parse_trace_logs,
    sample_anomaly,
)
from repro.flowbench.anomalies import get_anomaly
from repro.flowbench.dataset import DEFAULT_TRACE_COUNTS, DatasetSplit
from repro.tokenization.templates import FEATURE_ORDER


class TestWorkflows:
    @pytest.mark.parametrize(
        "builder,expected_nodes",
        [
            (build_1000genome_workflow, 137),
            (build_montage_workflow, 539),
            (build_sales_prediction_workflow, 165),
        ],
    )
    def test_node_counts_match_paper(self, builder, expected_nodes):
        spec = builder()
        assert spec.num_jobs == expected_nodes

    @pytest.mark.parametrize(
        "builder",
        [build_1000genome_workflow, build_montage_workflow, build_sales_prediction_workflow],
    )
    def test_dags_are_acyclic_and_typed(self, builder):
        spec = builder()
        assert nx.is_directed_acyclic_graph(spec.dag)
        spec.validate()
        for node in spec.dag.nodes:
            assert spec.profile(node).runtime_mean > 0

    def test_total_default_traces_match_flowbench_size(self):
        assert sum(DEFAULT_TRACE_COUNTS.values()) == 1211

    def test_topological_order_respects_edges(self):
        spec = build_1000genome_workflow()
        order = {job: i for i, job in enumerate(spec.topological_jobs())}
        for u, v in spec.dag.edges():
            assert order[u] < order[v]

    def test_build_workflow_aliases(self):
        assert build_workflow("1000 Genome").name == "1000genome"
        assert build_workflow("sales").name == "predict_future_sales"
        with pytest.raises(KeyError):
            build_workflow("does-not-exist")


class TestAnomalies:
    def test_cpu_slowdown_factors_increase_with_magnitude(self):
        factors = [get_anomaly(f"cpu_{m}").slowdown_factor() for m in (2, 3, 4)]
        assert factors == sorted(factors)
        assert factors[0] > 1.0

    def test_hdd_lower_cap_means_bigger_slowdown(self):
        assert get_anomaly("hdd_5").slowdown_factor() > get_anomaly("hdd_10").slowdown_factor()

    def test_cpu_anomaly_inflates_cpu_time_not_staging(self):
        spec = build_1000genome_workflow()
        profile = spec.profiles["individuals"]
        features = {
            "wms_delay": 5.0, "queue_delay": 20.0, "runtime": 1000.0,
            "post_script_delay": 5.0, "stage_in_delay": 60.0, "stage_out_delay": 6.0,
            "stage_in_bytes": 1e8, "stage_out_bytes": 1e7, "cpu_time": 900.0,
        }
        rng = np.random.default_rng(0)
        perturbed = get_anomaly("cpu_4").apply(features, profile, rng)
        assert perturbed["cpu_time"] > features["cpu_time"] * 1.3
        assert perturbed["runtime"] > features["runtime"]
        assert perturbed["stage_in_delay"] == features["stage_in_delay"]

    def test_hdd_anomaly_inflates_staging(self):
        spec = build_1000genome_workflow()
        profile = spec.profiles["individuals_merge"]
        features = {
            "wms_delay": 5.0, "queue_delay": 20.0, "runtime": 900.0,
            "post_script_delay": 5.0, "stage_in_delay": 90.0, "stage_out_delay": 6.0,
            "stage_in_bytes": 4e8, "stage_out_bytes": 3e8, "cpu_time": 700.0,
        }
        rng = np.random.default_rng(0)
        perturbed = get_anomaly("hdd_10").apply(features, profile, rng)
        assert perturbed["stage_in_delay"] > features["stage_in_delay"] * 5
        assert perturbed["cpu_time"] == pytest.approx(features["cpu_time"], rel=0.1)

    def test_sample_anomaly_respects_categories(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert sample_anomaly(rng, ("cpu",)).category == "cpu"
        with pytest.raises(ValueError):
            sample_anomaly(rng, ("gpu",))

    def test_unknown_anomaly_name(self):
        with pytest.raises(KeyError):
            get_anomaly("cpu_99")

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            AnomalySpec("weird", "net", 3).slowdown_factor()


class TestSimulator:
    def test_normal_trace_has_no_anomalies(self):
        sim = WorkflowSimulator(build_1000genome_workflow(), seed=0)
        trace = sim.simulate(anomaly=None)
        assert trace.num_jobs == 137
        assert trace.num_anomalous == 0
        assert all(set(FEATURE_ORDER) == set(r.features) for r in trace.records)

    def test_anomalous_trace_labels_subset_of_jobs(self):
        sim = WorkflowSimulator(build_1000genome_workflow(), affected_fraction=0.4, seed=0)
        trace = sim.simulate(anomaly=get_anomaly("hdd_5"))
        assert 0 < trace.num_anomalous < trace.num_jobs
        assert trace.num_anomalous == pytest.approx(0.4 * trace.num_jobs, rel=0.4)
        assert all(r.anomaly_type == "hdd_5" for r in trace.records if r.label == 1)

    def test_features_are_positive(self):
        sim = WorkflowSimulator(build_sales_prediction_workflow(), seed=1)
        trace = sim.simulate(sample_anomaly(np.random.default_rng(0)))
        matrix = trace.feature_matrix()
        assert np.all(matrix > 0)

    def test_log_lines_emitted_per_job(self):
        sim = WorkflowSimulator(build_1000genome_workflow(), seed=0)
        trace = sim.simulate()
        assert len(trace.log_lines) == 7 * trace.num_jobs

    def test_simulate_many_anomaly_probability(self):
        sim = WorkflowSimulator(build_1000genome_workflow(), seed=0)
        traces = sim.simulate_many(10, anomaly_probability=1.0)
        assert all(t.anomaly is not None for t in traces)
        traces = sim.simulate_many(5, anomaly_probability=0.0)
        assert all(t.anomaly is None for t in traces)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WorkflowSimulator(build_1000genome_workflow(), num_workers=0)
        with pytest.raises(ValueError):
            WorkflowSimulator(build_1000genome_workflow(), affected_fraction=1.5)
        sim = WorkflowSimulator(build_1000genome_workflow())
        with pytest.raises(ValueError):
            sim.simulate_many(3, anomaly_probability=2.0)

    def test_trace_ids_increment(self):
        sim = WorkflowSimulator(build_1000genome_workflow(), seed=0)
        ids = [sim.simulate().trace_id for _ in range(3)]
        assert ids == [0, 1, 2]


class TestParsing:
    def test_roundtrip_simulator_logs(self):
        sim = WorkflowSimulator(build_1000genome_workflow(), seed=3)
        trace = sim.simulate(get_anomaly("cpu_3"))
        parsed = parse_log_lines(trace.log_lines)
        assert len(parsed) == trace.num_jobs
        by_name = {r.job_name: r for r in parsed}
        for record in trace.records:
            np.testing.assert_allclose(
                by_name[record.job_name].feature_vector(), record.feature_vector(), rtol=1e-6
            )

    def test_labels_attached_from_mapping(self):
        sim = WorkflowSimulator(build_1000genome_workflow(), seed=4)
        trace = sim.simulate(get_anomaly("hdd_5"))
        labels = {r.job_name: int(r.label) for r in trace.records}
        parsed = parse_trace_logs(trace.log_lines, labels)
        assert sum(r.label for r in parsed) == trace.num_anomalous

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_log_lines(["ts=1.0 event=SUBMIT"])  # missing job
        with pytest.raises(ValueError):
            parse_log_lines(["ts=1.0 job=a event=USAGE cpu_time=abc"])

    def test_blank_lines_ignored(self):
        sim = WorkflowSimulator(build_1000genome_workflow(), seed=5)
        trace = sim.simulate()
        lines = ["", *trace.log_lines, "   "]
        assert len(parse_log_lines(lines)) == trace.num_jobs


class TestDataset:
    def test_split_ratios(self, small_dataset):
        total = len(small_dataset.train) + len(small_dataset.validation) + len(small_dataset.test)
        assert total == 4 * 137
        assert len(small_dataset.train) == pytest.approx(0.8 * total, rel=0.05)

    def test_statistics_format_matches_table1(self, small_dataset):
        rows = small_dataset.statistics()
        assert {r["split"] for r in rows} == {"train", "validation", "test"}
        for row in rows:
            assert row["num_normal"] + row["num_anomalous"] > 0
            assert 0.0 <= row["anomaly_fraction"] <= 1.0

    def test_anomaly_fraction_close_to_paper(self):
        dataset = generate_dataset("1000genome", num_traces=30, seed=2)
        assert dataset.train.anomaly_fraction() == pytest.approx(0.3264, abs=0.08)

    def test_normalized_features_standardised(self, small_dataset):
        train = small_dataset.normalized_features("train")
        np.testing.assert_allclose(train.mean(axis=0), np.zeros(train.shape[1]), atol=1e-5)
        np.testing.assert_allclose(train.std(axis=0), np.ones(train.shape[1]), atol=1e-3)

    def test_trace_graphs_shapes(self, small_dataset):
        graphs = small_dataset.trace_graphs()
        assert len(graphs) == 4
        g = graphs[0]
        n = small_dataset.spec.num_jobs
        assert g["adjacency"].shape == (n, n)
        assert g["features"].shape == (n, len(FEATURE_ORDER))
        assert g["labels"].shape == (n,)
        # adjacency is symmetric (undirected message passing)
        np.testing.assert_allclose(g["adjacency"], g["adjacency"].T)

    def test_subsample_stratified_preserves_ratio(self, small_dataset):
        sub = small_dataset.train.subsample(100, rng=0)
        assert len(sub) == 100
        assert sub.anomaly_fraction() == pytest.approx(small_dataset.train.anomaly_fraction(), abs=0.1)

    def test_subsample_larger_than_split_returns_all(self, small_dataset):
        sub = small_dataset.validation.subsample(10_000, rng=0)
        assert len(sub) == len(small_dataset.validation)

    def test_filter_and_merge(self, small_dataset):
        normal = small_dataset.train.filter_by_label(0)
        anomalous = small_dataset.train.filter_by_label(1)
        assert len(normal) + len(anomalous) == len(small_dataset.train)
        assert len(normal.merge(anomalous)) == len(small_dataset.train)

    def test_sentences_and_labels_align(self, small_dataset):
        split = small_dataset.test
        sentences = split.sentences(include_label=True)
        labels = split.labels()
        for sentence, label in zip(sentences[:50], labels[:50]):
            assert sentence.endswith("Abnormal") == bool(label)

    def test_generate_flowbench_returns_all_workflows(self):
        datasets = generate_flowbench(num_traces=2, seed=0)
        assert set(datasets) == {"1000genome", "montage", "predict_future_sales"}

    def test_invalid_split_ratio(self):
        with pytest.raises(ValueError):
            generate_dataset("1000genome", num_traces=2, split_ratios=(0.5, 0.4, 0.2))

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=1, max_value=50))
    def test_dataset_split_len_invariant(self, n):
        split = DatasetSplit([])
        assert len(split) == 0 and split.anomaly_fraction() == 0.0
