"""Tests for the supervised (MLP, GCN) and unsupervised baseline detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    AnomalyDAEDetector,
    GCNAutoencoderDetector,
    GCNClassifier,
    IsolationForestDetector,
    MLPAutoencoderDetector,
    MLPClassifier,
    PCADetector,
    evaluate_detector,
    normalized_adjacency,
)


def synthetic_anomaly_problem(n=400, dim=6, anomaly_fraction=0.2, seed=0):
    """Gaussian blob with a shifted anomalous cluster — separable but noisy."""
    rng = np.random.default_rng(seed)
    n_anom = int(n * anomaly_fraction)
    normal = rng.normal(0.0, 1.0, size=(n - n_anom, dim))
    anomalous = rng.normal(3.0, 1.5, size=(n_anom, dim))
    features = np.vstack([normal, anomalous])
    labels = np.concatenate([np.zeros(n - n_anom, dtype=int), np.ones(n_anom, dtype=int)])
    order = rng.permutation(n)
    return features[order], labels[order]


class TestMLPClassifier:
    def test_learns_separable_problem(self):
        x, y = synthetic_anomaly_problem()
        model = MLPClassifier(input_dim=x.shape[1], hidden_dims=(16,), seed=0)
        losses = model.fit(x, y, epochs=20, seed=0)
        assert losses[-1] < losses[0]
        report = model.evaluate(x, y)
        assert report.accuracy > 0.9

    def test_on_flowbench_features(self, small_dataset):
        x_train = small_dataset.normalized_features("train")
        x_test = small_dataset.normalized_features("test")
        model = MLPClassifier(input_dim=x_train.shape[1], seed=0)
        model.fit(x_train, small_dataset.train.labels(), epochs=15, seed=0)
        report = model.evaluate(x_test, small_dataset.test.labels())
        majority = 1 - small_dataset.test.anomaly_fraction()
        assert report.accuracy > majority

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPClassifier(input_dim=0)
        model = MLPClassifier(input_dim=3)
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 3)), np.zeros(2))

    def test_predict_proba_normalised(self):
        model = MLPClassifier(input_dim=4, seed=0)
        probs = model.predict_proba(np.zeros((5, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), rtol=1e-5)


class TestGCN:
    def test_normalized_adjacency_properties(self):
        adjacency = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=np.float32)
        norm = normalized_adjacency(adjacency)
        assert norm.shape == (3, 3)
        np.testing.assert_allclose(norm, norm.T, atol=1e-6)
        # Row sums of D^-1/2 (A+I) D^-1/2 are bounded by 1 for this graph
        assert norm.max() <= 1.0 + 1e-6
        with pytest.raises(ValueError):
            normalized_adjacency(np.zeros((2, 3)))

    def test_gcn_learns_node_labels(self, small_dataset):
        graphs = small_dataset.trace_graphs()
        model = GCNClassifier(input_dim=graphs[0]["features"].shape[1], hidden_dim=16, seed=0)
        losses = model.fit(graphs[:3], epochs=15, seed=0)
        assert losses[-1] < losses[0]
        report = model.evaluate(graphs[3:])
        labels = np.concatenate([g["labels"] for g in graphs[3:]])
        majority = max(np.mean(labels == 0), np.mean(labels == 1))
        assert report.accuracy >= majority - 0.05

    def test_fit_requires_graphs(self):
        with pytest.raises(ValueError):
            GCNClassifier(input_dim=4).fit([])


class TestUnsupervisedDetectors:
    @pytest.mark.parametrize(
        "detector_factory",
        [
            lambda: IsolationForestDetector(n_trees=40, seed=0),
            lambda: PCADetector(n_components=2),
            lambda: MLPAutoencoderDetector(epochs=25, seed=0),
        ],
        ids=["isolation-forest", "pca", "mlp-autoencoder"],
    )
    def test_detectors_rank_anomalies_above_random(self, detector_factory):
        x, y = synthetic_anomaly_problem(seed=1)
        detector = detector_factory().fit(x)
        scores = detector.score(x)
        result = evaluate_detector("d", scores, y)
        assert result.roc_auc > 0.7
        assert result.average_precision > 0.35

    def test_isolation_forest_requires_fit(self):
        with pytest.raises(RuntimeError):
            IsolationForestDetector(n_trees=5).score(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            IsolationForestDetector(n_trees=0)

    def test_pca_detector_reconstruction_error_zero_for_low_rank_data(self):
        rng = np.random.default_rng(0)
        basis = rng.normal(size=(2, 5))
        data = rng.normal(size=(50, 2)) @ basis
        detector = PCADetector(n_components=2).fit(data)
        assert detector.score(data).max() < 1e-5

    def test_gcn_autoencoder_on_graphs(self, small_dataset):
        graphs = small_dataset.trace_graphs()
        detector = GCNAutoencoderDetector(epochs=10, seed=0).fit_graphs(graphs[:2])
        scores = detector.score_graph(graphs[2])
        assert scores.shape == (small_dataset.spec.num_jobs,)
        assert np.all(np.isfinite(scores))

    def test_anomalydae_scores_and_oom_guard(self, small_dataset):
        graphs = small_dataset.trace_graphs()
        detector = AnomalyDAEDetector(epochs=5, max_nodes=500, seed=0).fit_graph(graphs[0])
        scores = detector.score_graph(graphs[1])
        assert scores.shape == (small_dataset.spec.num_jobs,)
        # The OOM failure mode of Table IV is surfaced explicitly.
        tiny_guard = AnomalyDAEDetector(max_nodes=10)
        with pytest.raises(MemoryError):
            tiny_guard.fit_graph(graphs[0])

    def test_evaluate_detector_bundle(self):
        x, y = synthetic_anomaly_problem(seed=2)
        detector = PCADetector(n_components=2).fit(x)
        result = evaluate_detector("PCA", detector.score(x), y, k=20)
        as_dict = result.as_dict()
        assert set(as_dict) == {"roc_auc", "average_precision", "precision_at_k"}
        assert all(0.0 <= v <= 1.0 for v in as_dict.values())
