"""Tests for the data-parallel replica fleet (:mod:`repro.serving.fleet`).

Pins the multi-process serving contracts:

* fleet greedy outputs are token-identical to a single in-process engine
  built from the same deterministic builder, whichever replica serves each
  request;
* prefix-affinity routing pins a prompt family to one replica (and its
  pool hit rate beats round-robin on repeat traffic), with load-aware
  spill when the pinned replica is saturated;
* warm-prefix migration moves a serialized pool entry between workers and
  re-pins the family to the receiving replica;
* shutdown hygiene — ``close`` is idempotent, leaves no orphaned worker
  processes (the CI assertion), and a builder that dies in the worker
  surfaces as a startup error rather than a hang.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.models import DecoderLM, get_config
from repro.serving import ContinuousBatchingEngine, PrefixCachePool, ReplicaFleet

VOCAB = 64


def _build_model() -> DecoderLM:
    """Module-level (picklable) deterministic replica builder."""
    model = DecoderLM(get_config("gpt2"), VOCAB, rng=0)
    model.eval()
    return model


def _fleet_children() -> list:
    return [p for p in mp.active_children() if p.name.startswith("fleet-worker")]


@pytest.fixture(autouse=True)
def no_orphaned_workers():
    """Every test must leave zero fleet worker processes behind."""
    assert _fleet_children() == []
    yield
    assert _fleet_children() == []


def family_trace(rng, num_families: int, passes: int, head: int = 24, tail: int = 4):
    """Repeat-traffic waves: shared per-family heads, fresh tails per pass."""
    heads = [rng.integers(1, VOCAB, size=head) for _ in range(num_families)]
    return [
        [
            np.concatenate([heads[f], rng.integers(1, VOCAB, size=tail)])
            for f in range(num_families)
        ]
        for _ in range(passes)
    ]


class TestFleetServing:
    def test_greedy_outputs_token_identical_to_single_engine(self):
        rng = np.random.default_rng(0)
        prompts = [rng.integers(1, VOCAB, size=n) for n in (5, 17, 9, 26, 12, 21)]

        model = _build_model()
        engine = ContinuousBatchingEngine(
            model, cache_pool=PrefixCachePool(model), max_batch_rows=4
        )
        requests = [engine.submit(p, max_new_tokens=8) for p in prompts]
        engine.drain()
        reference = [r.result for r in requests]

        with ReplicaFleet(
            _build_model, 2, engine_kwargs={"max_batch_rows": 4}
        ) as fleet:
            outputs = fleet.generate(prompts, max_new_tokens=8)
        for got, want in zip(outputs, reference):
            np.testing.assert_array_equal(got, want)

    def test_affinity_pins_families_and_outhits_round_robin(self):
        # Three families over two workers: round-robin rotates each family
        # across replicas pass to pass, affinity pins it where its KV lives.
        passes = family_trace(np.random.default_rng(1), num_families=3, passes=3)

        def serve(routing: str) -> tuple[int, list[int]]:
            with ReplicaFleet(
                _build_model,
                2,
                routing=routing,
                affinity_tokens=16,  # inside the 24-token shared head
                engine_kwargs={"max_batch_rows": 4},
                pool_kwargs={"max_entries": 4},
            ) as fleet:
                handles = []
                for wave in passes:
                    handles.extend(fleet.submit(p, 4) for p in wave)
                    fleet.drain()
                hits = sum(w["pool"]["hits"] for w in fleet.worker_stats())
                return hits, [h.worker for h in handles]

        affinity_hits, affinity_workers = serve("affinity")
        round_robin_hits, _ = serve("round_robin")
        # Each family is pinned: all its requests landed on one worker.
        for f in (0, 1, 2):
            family = affinity_workers[f::3]
            assert len(set(family)) == 1
        assert affinity_hits > round_robin_hits

    def test_saturated_pin_spills_to_least_loaded(self):
        rng = np.random.default_rng(2)
        head = rng.integers(1, VOCAB, size=24)
        prompts = [
            np.concatenate([head, rng.integers(1, VOCAB, size=3)]) for _ in range(3)
        ]
        with ReplicaFleet(
            _build_model, 2, affinity_tokens=16, spill_threshold=1
        ) as fleet:
            first = fleet.submit(prompts[0], 4)
            second = fleet.submit(prompts[1], 4)  # pin saturated -> other worker
            fleet.drain()
            third = fleet.submit(prompts[2], 4)  # pin idle again -> back home
            fleet.drain()
        assert second.worker != first.worker
        assert third.worker == first.worker
        assert fleet.stats.affinity_new == 1
        assert fleet.stats.affinity_spills == 1
        assert fleet.stats.affinity_pinned == 1

    def test_migrate_prefix_moves_entry_and_repins(self):
        rng = np.random.default_rng(3)
        head = rng.integers(1, VOCAB, size=24)
        prompt = np.concatenate([head, rng.integers(1, VOCAB, size=4)])
        with ReplicaFleet(_build_model, 2, affinity_tokens=16) as fleet:
            fleet.generate([prompt], 4)
            src = fleet.pinned_worker(prompt)
            dst = 1 - src
            moved = fleet.migrate_prefix(prompt, src, dst)
            assert moved == len(prompt)  # the pooled prompt prefill moved whole
            assert fleet.pinned_worker(prompt) == dst
            assert fleet.worker_stats()[dst]["pool_entries"] == 1
            # Repeat traffic now lands on (and hits) the receiving replica.
            follow_up = fleet.submit(
                np.concatenate([head, rng.integers(1, VOCAB, size=4)]), 4
            )
            fleet.drain()
            assert follow_up.worker == dst
            assert follow_up.reused_tokens >= len(head)

    def test_export_prefix_returns_none_when_nothing_pooled(self):
        with ReplicaFleet(_build_model, 1) as fleet:
            prompt = np.arange(1, 20)
            assert fleet.export_prefix(prompt, 0) is None
            assert fleet.migrate_prefix(prompt, 0, 0) == 0


class TestFleetLifecycle:
    def test_close_is_idempotent_and_rejects_further_work(self):
        fleet = ReplicaFleet(_build_model, 2)
        fleet.generate([np.arange(1, 9)], 4)
        fleet.close()
        fleet.close()
        assert _fleet_children() == []
        with pytest.raises(RuntimeError, match="closed"):
            fleet.submit(np.arange(1, 9), 4)
        with pytest.raises(RuntimeError, match="closed"):
            fleet.worker_stats()

    def test_failing_builder_surfaces_at_startup_without_orphans(self):
        with pytest.raises(RuntimeError, match="failed to start"):
            ReplicaFleet(_broken_builder, 2, startup_timeout=60.0)
        assert _fleet_children() == []

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="num_workers"):
            ReplicaFleet(_build_model, 0)
        with pytest.raises(ValueError, match="routing"):
            ReplicaFleet(_build_model, 1, routing="random")
        with pytest.raises(ValueError, match="pool_kwargs"):
            ReplicaFleet(_build_model, 1, engine_kwargs={"cache_pool": object()})


def _broken_builder():
    raise RuntimeError("boom")
