"""Tests for the async serving front-end (:mod:`repro.serving.aio`).

Pins the async-layer invariants:

* greedy tokens from :class:`~repro.serving.AsyncEngine` under randomized
  concurrent submission (asyncio clients and plain threads) are identical
  to the sequential cached path;
* per-request token streams deliver exactly the generated tail, including
  backlog replay for subscribers that attach mid-decode;
* cancellation and timeouts retire rows at the next step boundary, surface
  as :class:`RequestCancelled`/:class:`RequestTimeout` with the partial
  output, and leak no KV rows — and a cancel racing natural retirement is
  a no-op;
* shutdown drains (finishing all queued and live work) or aborts
  (cancelling it), and either way leaves every future resolved;
* the reworked :class:`~repro.serving.BatchScheduler` is a thin sync
  adapter: a flush behaves exactly like the pre-async synchronous drain.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from parity import assert_generations_equal
from repro.models import DecoderLM, get_config
from repro.serving import (
    AsyncEngine,
    BatchScheduler,
    PrefixCachePool,
    RequestCancelled,
    RequestTimeout,
)

VOCAB = 64


@pytest.fixture(scope="module")
def model():
    m = DecoderLM(get_config("gpt2"), VOCAB, rng=0)
    m.eval()
    return m


@pytest.fixture()
def ragged_prompts():
    rng = np.random.default_rng(29)
    return [rng.integers(1, VOCAB, size=n) for n in (3, 9, 5, 12, 7, 4, 10, 6)]


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.002) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")


def assert_no_leaked_rows(engine: AsyncEngine) -> None:
    """Every KV row, live-request entry and queue slot has been reclaimed."""
    wait_until(lambda: engine.num_pending == 0)
    inner = engine.engine
    assert inner.batch.num_rows == 0
    assert inner.batch.cache.batch_size == 0
    assert not inner._live and inner.num_queued == 0


# ---------------------------------------------------------------------- #
# parity under concurrency
# ---------------------------------------------------------------------- #
class TestAsyncParity:
    def test_randomized_concurrent_clients_match_sequential(self, model, ragged_prompts):
        """N asyncio clients with random arrival jitter == sequential greedy."""
        rng = np.random.default_rng(5)
        budgets = [int(b) for b in rng.integers(3, 10, size=len(ragged_prompts))]
        delays = [float(d) for d in rng.uniform(0.0, 0.03, size=len(ragged_prompts))]
        with AsyncEngine(
            model, max_batch_rows=3, cache_pool=PrefixCachePool(model, max_entries=4)
        ) as engine:

            async def client(i):
                await asyncio.sleep(delays[i])
                return await engine.generate(ragged_prompts[i], max_new_tokens=budgets[i])

            async def main():
                return await asyncio.gather(
                    *(client(i) for i in range(len(ragged_prompts)))
                )

            results = asyncio.run(main())
            expected = [
                model.generate(p, max_new_tokens=b)
                for p, b in zip(ragged_prompts, budgets)
            ]
            assert_generations_equal(results, expected, context="async concurrent")
            assert engine.stats.finished == len(ragged_prompts)
            assert engine.stats.peak_queue_depth >= 1
            assert_no_leaked_rows(engine)

    def test_submissions_from_plain_threads(self, model, ragged_prompts):
        """submit()/result() need no event loop; submitters race from threads."""
        with AsyncEngine(model, max_batch_rows=4) as engine:
            results: dict[int, np.ndarray] = {}

            def worker(indices):
                handles = [
                    (i, engine.submit(ragged_prompts[i], max_new_tokens=5))
                    for i in indices
                ]
                for i, handle in handles:
                    results[i] = handle.result(timeout=60)

            threads = [
                threading.Thread(target=worker, args=(range(k, 8, 4),))
                for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            expected = [model.generate(p, max_new_tokens=5) for p in ragged_prompts]
            assert_generations_equal(
                [results[i] for i in range(8)], expected, context="threaded submit"
            )
            assert_no_leaked_rows(engine)

    def test_streaming_delivers_generated_tail(self, model, ragged_prompts):
        with AsyncEngine(model, max_batch_rows=2) as engine:

            async def main():
                tokens = []
                async for token in engine.stream(ragged_prompts[1], max_new_tokens=7):
                    tokens.append(token)
                return tokens

            tokens = asyncio.run(main())
            reference = model.generate(ragged_prompts[1], max_new_tokens=7)
            assert tokens == [int(t) for t in reference[len(ragged_prompts[1]) :]]

    def test_mid_decode_subscription_replays_backlog(self, model, ragged_prompts):
        with AsyncEngine(model, max_batch_rows=2) as engine:
            request = engine.submit(ragged_prompts[2], max_new_tokens=8)
            wait_until(
                lambda: request.engine_request is not None
                and request.engine_request.state.gen_len >= 2
            )

            async def main():
                return [token async for token in request.tokens()]

            tokens = asyncio.run(main())
            reference = model.generate(ragged_prompts[2], max_new_tokens=8)
            assert tokens == [int(t) for t in reference[len(ragged_prompts[2]) :]]

    def test_zero_token_budget_resolves_immediately(self, model, ragged_prompts):
        with AsyncEngine(model, max_batch_rows=2) as engine:
            request = engine.submit(ragged_prompts[0], max_new_tokens=0)
            np.testing.assert_array_equal(request.result(timeout=30), ragged_prompts[0])
            assert request.finish_reason == "length"
            assert_no_leaked_rows(engine)

    def test_async_score_matches_direct_call(self, model, ragged_prompts):
        candidates = [np.array([3]), np.array([4, 5]), np.array([6, 7, 8])]
        with AsyncEngine(model, max_batch_rows=2) as engine:
            scores = asyncio.run(engine.score(ragged_prompts[0], candidates))
        np.testing.assert_allclose(
            scores,
            model.score_continuations(ragged_prompts[0], candidates),
            rtol=1e-6,
        )

    def test_submit_validation_raises_at_call_site(self, model):
        with AsyncEngine(model, max_batch_rows=2) as engine:
            with pytest.raises(ValueError):
                engine.submit(np.empty(0, dtype=np.int64))
            with pytest.raises(ValueError):
                engine.submit(np.ones(model.config.max_position + 1, dtype=np.int64))
            with pytest.raises(ValueError):
                engine.submit_score(np.empty(0, dtype=np.int64), [np.array([1])])


# ---------------------------------------------------------------------- #
# cancellation and timeouts
# ---------------------------------------------------------------------- #
class TestCancellation:
    def test_cancel_mid_decode_reclaims_row_deterministically(self, model, ragged_prompts):
        """The row retires at the next step boundary with the partial output.

        ``on_step`` gates the stepping thread so the cancel lands at a known
        iteration: exactly one token has been decoded when it is processed.
        """
        step_done = threading.Event()
        resume = threading.Event()

        def hook(_engine):
            step_done.set()
            resume.wait(10)
            resume.clear()

        engine = AsyncEngine(model, max_batch_rows=2, on_step=hook)
        try:
            request = engine.submit(ragged_prompts[0], max_new_tokens=50)
            sibling = engine.submit(ragged_prompts[1], max_new_tokens=6)
            assert step_done.wait(10)
            step_done.clear()
            assert request.cancel()
            resume.set()
            with pytest.raises(RequestCancelled) as info:
                request.result(timeout=30)
            # Exactly one decode step ran before the cancel was applied.
            assert len(info.value.partial) == len(ragged_prompts[0]) + 1
            reference = model.generate(ragged_prompts[0], max_new_tokens=50)
            np.testing.assert_array_equal(
                info.value.partial, reference[: len(info.value.partial)]
            )
            assert request.finish_reason == "cancelled"
            # The sibling decodes to parity, unaffected by the retirement.
            while not sibling.done:
                resume.set()
                time.sleep(0.001)
            resume.set()
            assert_generations_equal(
                [sibling.result(timeout=30)],
                [model.generate(ragged_prompts[1], max_new_tokens=6)],
                context="sibling of cancelled row",
            )
            assert engine.stats.cancelled == 1
        finally:
            engine.on_step = None
            resume.set()
            engine.shutdown(drain=False)
        assert_no_leaked_rows(engine)

    def test_cancel_queued_request_never_admitted(self, model, ragged_prompts):
        with AsyncEngine(model, max_batch_rows=1) as engine:
            blocker = engine.submit(ragged_prompts[0], max_new_tokens=40)
            queued = engine.submit(ragged_prompts[1], max_new_tokens=5)
            wait_until(lambda: blocker.engine_request is not None)
            assert queued.cancel()
            with pytest.raises(RequestCancelled) as info:
                queued.result(timeout=30)
            np.testing.assert_array_equal(info.value.partial, ragged_prompts[1])
            blocker.cancel()
            assert_no_leaked_rows(engine)

    def test_cancel_racing_retirement_is_a_noop(self, model, ragged_prompts):
        with AsyncEngine(model, max_batch_rows=2) as engine:
            request = engine.submit(ragged_prompts[0], max_new_tokens=1)
            result = request.result(timeout=30)
            assert request.cancel() is False  # already finished: result stands
            np.testing.assert_array_equal(
                result, model.generate(ragged_prompts[0], max_new_tokens=1)
            )
            assert request.finish_reason == "length"
            assert engine.stats.cancelled == 0

    def test_timeout_on_live_request(self, model, ragged_prompts):
        with AsyncEngine(model, max_batch_rows=2) as engine:
            request = engine.submit(
                ragged_prompts[2], max_new_tokens=10_000, timeout=0.05
            )
            with pytest.raises(RequestTimeout) as info:
                request.result(timeout=30)
            assert request.finish_reason == "timeout"
            reference = model.generate(ragged_prompts[2], max_new_tokens=50)
            upto = min(len(info.value.partial), len(reference))
            np.testing.assert_array_equal(
                info.value.partial[:upto], reference[:upto]
            )
            assert engine.stats.timeouts == 1
            assert_no_leaked_rows(engine)

    def test_timeout_while_queued_takes_no_row(self, model, ragged_prompts):
        with AsyncEngine(model, max_batch_rows=1) as engine:
            blocker = engine.submit(ragged_prompts[0], max_new_tokens=200)
            victim = engine.submit(ragged_prompts[1], max_new_tokens=5, timeout=0.03)
            with pytest.raises(RequestTimeout) as info:
                victim.result(timeout=30)
            np.testing.assert_array_equal(info.value.partial, ragged_prompts[1])
            assert victim.engine_request is None or not victim.engine_request.state.admitted
            blocker.cancel()
            assert_no_leaked_rows(engine)

    def test_cancelling_the_awaiting_task_cancels_the_request(self, model, ragged_prompts):
        with AsyncEngine(model, max_batch_rows=2) as engine:

            async def main():
                task = asyncio.ensure_future(
                    engine.generate(ragged_prompts[0], max_new_tokens=10_000)
                )
                await asyncio.sleep(0.05)
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task

            asyncio.run(main())
            assert_no_leaked_rows(engine)


# ---------------------------------------------------------------------- #
# shutdown
# ---------------------------------------------------------------------- #
class TestShutdown:
    def test_drain_finishes_all_work_then_rejects(self, model, ragged_prompts):
        engine = AsyncEngine(model, max_batch_rows=2)
        handles = [
            engine.submit(p, max_new_tokens=5) for p in ragged_prompts[:5]
        ]
        engine.shutdown(drain=True)
        expected = [model.generate(p, max_new_tokens=5) for p in ragged_prompts[:5]]
        assert_generations_equal(
            [h.result(timeout=1) for h in handles], expected, context="drain shutdown"
        )
        with pytest.raises(RuntimeError):
            engine.submit(ragged_prompts[0])
        with pytest.raises(RuntimeError):
            engine.submit_score(ragged_prompts[0], [np.array([1])])
        engine.shutdown()  # idempotent

    def test_abort_cancels_queued_and_live(self, model, ragged_prompts):
        engine = AsyncEngine(model, max_batch_rows=1)
        handles = [
            engine.submit(p, max_new_tokens=10_000) for p in ragged_prompts[:3]
        ]
        wait_until(lambda: handles[0].engine_request is not None)
        engine.shutdown(drain=False)
        for handle in handles:
            assert handle.done
            with pytest.raises(RequestCancelled):
                handle.result(timeout=1)
        inner = engine.engine
        assert inner.batch.num_rows == 0 and not inner._live

    def test_shutdown_without_ever_starting(self, model):
        engine = AsyncEngine(model, max_batch_rows=2)
        engine.shutdown()  # no thread was started; must not hang
        with pytest.raises(RuntimeError):
            engine.submit(np.array([1, 2, 3]))


# ---------------------------------------------------------------------- #
# the sync adapter
# ---------------------------------------------------------------------- #
class TestSchedulerAdapter:
    def test_flush_is_equivalent_to_sync_drain(self, model, ragged_prompts):
        """Atomic batch submission keeps admission groups and steps identical."""
        with BatchScheduler(
            model, max_batch_size=3, cache_pool=PrefixCachePool(model, max_entries=4)
        ) as scheduler:
            requests = [
                scheduler.submit_generate(p, max_new_tokens=4)
                for p in ragged_prompts[:5]
            ]
            scheduler.flush()
            assert scheduler.stats.batch_sizes == [3, 2]
            expected = [
                model.generate(p, max_new_tokens=4) for p in ragged_prompts[:5]
            ]
            assert_generations_equal(
                [r.result for r in requests], expected, context="adapter flush"
            )
            # The stepping thread parked after the flush — stats flow through.
            assert scheduler.engine.stats.finished == 5
            assert scheduler.engine.stats.peak_queue_depth >= 1

    def test_flush_from_a_worker_thread(self, model, ragged_prompts):
        with BatchScheduler(model, max_batch_size=2) as scheduler:
            for p in ragged_prompts[:3]:
                scheduler.submit_generate(p, max_new_tokens=4)
            done: list = []
            worker = threading.Thread(target=lambda: done.extend(scheduler.flush()))
            worker.start()
            worker.join(60)
            assert len(done) == 3 and all(r.done for r in done)
            expected = [
                model.generate(p, max_new_tokens=4) for p in ragged_prompts[:3]
            ]
            assert_generations_equal(
                [r.result for r in done], expected, context="flush off-thread"
            )

    def test_close_is_idempotent_and_rejects_new_flushes(self, model, ragged_prompts):
        scheduler = BatchScheduler(model, max_batch_size=2)
        scheduler.submit_generate(ragged_prompts[0], max_new_tokens=3)
        scheduler.flush()
        scheduler.close()
        scheduler.close()
        scheduler.submit_generate(ragged_prompts[1], max_new_tokens=3)
        flushed = scheduler.flush()
        assert flushed[0].error  # engine is shut down; reported, not hung
