"""Tests for the utility helpers (rng, timing, io) and the top-level package API."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.utils import Timer, load_json, load_npz, new_rng, save_json, save_npz, spawn_rngs, timed
from repro.utils.rng import RngMixin


class TestRng:
    def test_new_rng_accepts_seed_generator_none(self):
        assert isinstance(new_rng(0), np.random.Generator)
        gen = np.random.default_rng(1)
        assert new_rng(gen) is gen
        assert isinstance(new_rng(None), np.random.Generator)

    def test_same_seed_same_stream(self):
        assert new_rng(7).integers(0, 100, 5).tolist() == new_rng(7).integers(0, 100, 5).tolist()

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(0, 3)
        assert len(children) == 3
        draws = [c.integers(0, 1_000_000) for c in children]
        assert len(set(draws)) == 3
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_rng_mixin(self):
        class Thing(RngMixin):
            def __init__(self):
                self._init_rng(0)

        thing = Thing()
        sample = thing.choice_without_replacement(range(10), 4)
        assert len(set(sample)) == 4
        with pytest.raises(ValueError):
            thing.choice_without_replacement(range(3), 5)
        thing.reseed(1)
        assert isinstance(thing.rng, np.random.Generator)


class TestTimingAndIO:
    def test_timer_accumulates(self):
        timer = Timer()
        with timer.measure():
            sum(range(100))
        with timer.measure():
            sum(range(100))
        assert timer.count == 2 and timer.total >= 0 and timer.mean >= 0
        timer.reset()
        assert timer.count == 0 and timer.laps == []

    def test_timed_wrapper(self):
        result, elapsed = timed(lambda a, b: a + b)(2, 3)
        assert result == 5 and elapsed >= 0

    def test_json_roundtrip_with_numpy_types(self, tmp_path):
        payload = {"a": np.int64(3), "b": np.float32(0.5), "c": np.arange(3)}
        path = save_json(tmp_path / "sub" / "x.json", payload)
        loaded = load_json(path)
        assert loaded["a"] == 3 and loaded["c"] == [0, 1, 2]

    def test_json_rejects_unserialisable(self, tmp_path):
        with pytest.raises(TypeError):
            save_json(tmp_path / "x.json", {"f": object()})

    def test_npz_roundtrip(self, tmp_path):
        arrays = {"w": np.random.default_rng(0).normal(size=(3, 2))}
        path = save_npz(tmp_path / "weights.npz", arrays)
        loaded = load_npz(path)
        np.testing.assert_allclose(loaded["w"], arrays["w"])


class TestPackageAPI:
    def test_version_and_exports(self):
        assert repro.__version__ == "1.0.0"
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_model_state_roundtrip_through_npz(self, registry, tmp_path):
        """End-to-end persistence: save a model's weights and reload them."""
        model = registry.load_encoder("albert-base-v2")
        path = save_npz(tmp_path / "model.npz", model.state_dict())
        clone = registry.load_encoder("albert-base-v2", pretrained=False)
        clone.load_state_dict(load_npz(path))
        ids = np.zeros((1, 6), dtype=np.int64)
        np.testing.assert_allclose(model.predict_proba(ids), clone.predict_proba(ids), atol=1e-6)
