"""Tests for the block-paged (and int8-quantized) KV storage subsystem.

Pins the paged-KV invariants the serving stack depends on:

* :class:`~repro.nn.BlockAllocator` — ref-counted block lifecycle,
  copy-on-write splitting, free-list recycling, int8 round-trip accuracy;
* :class:`~repro.nn.PagedKVCache` — the dense cache protocol (append /
  truncate / admit_row / retire_rows / realign / clone_prefix / expand)
  implemented as table edits, verified in *lockstep* against a dense
  :class:`~repro.nn.KVCache` driven through random operation sequences
  (Hypothesis), with gathered keys/values equal on every live span and no
  leaked blocks once the caches are released;
* copy-on-write prefix sharing — clones and expansions reference the donor
  blocks until someone appends over a shared tail, and the donor's bytes
  never change;
* engine-level parity — the continuous-batching engine configured with
  ``kv_layout="paged"`` (fp32 and int8) emits token-identical greedy
  outputs to the dense engine under staggered arrivals, with every block
  returned to the allocator after the drain;
* the dense-cache regressions the paged layout subsumes: in-place (slack
  row) admission, ``clone_prefix`` capacity validation, and duplicate-index
  rejection in ``retire_rows``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from parity import assert_generations_equal
from repro.models import DecoderLM, get_config
from repro.nn import BlockAllocator, KVCache, PagedKVCache
from repro.serving import ContinuousBatchingEngine, PrefixCachePool
from repro.tensor import no_grad

VOCAB = 64

NUM_LAYERS = 2
NUM_HEADS = 2
HEAD_DIM = 4
BLOCK_SIZE = 4
#: The default block size model-level caches use (repro.nn.paged).
BLOCK_SIZE_MODEL = 16
CAPACITY = 64


@pytest.fixture(scope="module")
def model():
    m = DecoderLM(get_config("gpt2"), VOCAB, rng=0)
    m.eval()
    return m


@pytest.fixture()
def ragged_prompts():
    rng = np.random.default_rng(17)
    return [rng.integers(1, VOCAB, size=n) for n in (4, 11, 6, 9, 5, 13, 7, 8)]


def make_pair(kv_dtype: str = "fp32"):
    """A dense cache and a paged cache with identical geometry, both empty."""
    allocator = BlockAllocator(
        NUM_HEADS, HEAD_DIM, block_size=BLOCK_SIZE, kv_dtype=kv_dtype, initial_blocks=4
    )
    dense = KVCache(NUM_LAYERS, 0, NUM_HEADS, HEAD_DIM, CAPACITY)
    paged = PagedKVCache(NUM_LAYERS, 0, allocator, CAPACITY)
    return dense, paged, allocator


def random_kv(rng, batch: int, width: int) -> np.ndarray:
    return rng.normal(size=(batch, NUM_HEADS, width, HEAD_DIM)).astype(np.float32)


def fill_source(data_k, data_v, kv_dtype="fp32", allocator=None):
    """Batch-1 dense + paged caches holding the same keys/values."""
    width = data_k.shape[2]
    dense = KVCache(NUM_LAYERS, 1, NUM_HEADS, HEAD_DIM, width)
    allocator = allocator or BlockAllocator(
        NUM_HEADS, HEAD_DIM, block_size=BLOCK_SIZE, kv_dtype=kv_dtype
    )
    paged = PagedKVCache(NUM_LAYERS, 1, allocator, width)
    for layer_d, layer_p in zip(dense.layers, paged.layers):
        layer_d.append(data_k, data_v)
        layer_p.append(data_k, data_v)
    return dense, paged


def assert_live_spans_equal(dense: KVCache, paged: PagedKVCache, starts, atol=0.0):
    """Per-row gathered K/V parity over the live (masked-valid) spans."""
    assert dense.length == paged.length
    assert dense.batch_size == paged.batch_size
    for layer_d, layer_p in zip(dense.layers, paged.layers):
        for row, start in enumerate(starts):
            dk, dv = layer_d.read_span(row, start, dense.length)
            pk, pv = layer_p.read_span(row, start, paged.length)
            if atol == 0.0:
                np.testing.assert_array_equal(pk, dk)
                np.testing.assert_array_equal(pv, dv)
            else:
                np.testing.assert_allclose(pk, dk, atol=atol)
                np.testing.assert_allclose(pv, dv, atol=atol)


# ---------------------------------------------------------------------- #
# BlockAllocator
# ---------------------------------------------------------------------- #
class TestBlockAllocator:
    def test_refcount_lifecycle_and_free_list_reuse(self):
        allocator = BlockAllocator(NUM_HEADS, HEAD_DIM, block_size=BLOCK_SIZE)
        a = allocator.alloc()
        b = allocator.alloc()
        assert allocator.blocks_in_use == 2
        allocator.incref([a])
        allocator.decref([a])
        assert allocator.blocks_in_use == 2  # still one reference left
        allocator.decref([a, b])
        assert allocator.blocks_in_use == 0
        c = allocator.alloc()
        assert c in (a, b)  # recycled, not freshly grown
        assert allocator.peak_blocks_in_use == 2

    def test_ensure_exclusive_copies_shared_blocks_only(self):
        allocator = BlockAllocator(NUM_HEADS, HEAD_DIM, block_size=BLOCK_SIZE)
        rng = np.random.default_rng(0)
        k = rng.normal(size=(NUM_HEADS, BLOCK_SIZE, HEAD_DIM)).astype(np.float32)
        block = allocator.alloc()
        allocator.write(block, 0, k, 2 * k)
        assert allocator.ensure_exclusive(block) == block  # sole owner: no copy
        allocator.incref([block])
        fresh = allocator.ensure_exclusive(block)
        assert fresh != block
        assert allocator.refcount(block) == 1
        out_k = np.zeros((NUM_HEADS, BLOCK_SIZE, HEAD_DIM), np.float32)
        out_v = np.zeros_like(out_k)
        allocator.gather_row([fresh], BLOCK_SIZE, out_k, out_v, 0)
        np.testing.assert_array_equal(out_k, k)
        np.testing.assert_array_equal(out_v, 2 * k)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**16), width=st.integers(1, 3 * BLOCK_SIZE))
    def test_int8_round_trip_within_tolerance(self, seed, width):
        """Dequantized int8 blocks recover the source to ~1/254 relative error
        per (head, position) vector."""
        allocator = BlockAllocator(
            NUM_HEADS, HEAD_DIM, block_size=BLOCK_SIZE, kv_dtype="int8"
        )
        rng = np.random.default_rng(seed)
        k = (rng.normal(size=(NUM_HEADS, width, HEAD_DIM)) * 3).astype(np.float32)
        v = rng.normal(size=(NUM_HEADS, width, HEAD_DIM)).astype(np.float32)
        table = []
        pos = 0
        while pos < width:
            table.append(allocator.alloc())
            n = min(BLOCK_SIZE, width - pos)
            allocator.write(table[-1], 0, k[:, pos : pos + n], v[:, pos : pos + n])
            pos += n
        out_k = np.zeros((NUM_HEADS, width, HEAD_DIM), np.float32)
        out_v = np.zeros_like(out_k)
        allocator.gather_row(table, width, out_k, out_v, 0)
        bound_k = np.abs(k).max(axis=-1, keepdims=True) / 250.0 + 1e-7
        bound_v = np.abs(v).max(axis=-1, keepdims=True) / 250.0 + 1e-7
        assert (np.abs(out_k - k) <= bound_k).all()
        assert (np.abs(out_v - v) <= bound_v).all()


# ---------------------------------------------------------------------- #
# dense-cache regressions (the bugs the page allocator subsumes)
# ---------------------------------------------------------------------- #
class TestDenseCacheRegressions:
    def test_admission_appends_in_place_with_slack_rows(self):
        """A stream of admissions must not rebuild the whole batch per row:
        once slack exists, the buffers are written in place."""
        live = KVCache(NUM_LAYERS, 0, NUM_HEADS, HEAD_DIM, CAPACITY)
        rng = np.random.default_rng(0)
        reallocations = 0
        buffer_id = id(live.layers[0].keys)
        for _ in range(9):
            data = random_kv(rng, 1, 5)
            src, _ = fill_source(data, 2 * data)
            live.admit_row(src)
            if id(live.layers[0].keys) != buffer_id:
                reallocations += 1
                buffer_id = id(live.layers[0].keys)
        assert live.batch_size == 9
        # 1.5x slack growth: 9 sequential admissions reallocate only a few
        # times (the old concatenate-per-admission reallocated every time).
        assert reallocations <= 5
        assert live.layers[0].keys.shape[0] >= live.layers[0].rows

    def test_slack_rows_never_leak_into_reads(self):
        live = KVCache(NUM_LAYERS, 0, NUM_HEADS, HEAD_DIM, CAPACITY)
        rng = np.random.default_rng(1)
        sources = []
        for _ in range(3):
            data = random_kv(rng, 1, 4)
            src, _ = fill_source(data, -data)
            sources.append((data, src))
            live.admit_row(src)
        assert live.batch_size == 3
        k_all, v_all = live.layers[0].append(
            random_kv(rng, 3, 1), random_kv(rng, 3, 1)
        )
        assert k_all.shape[0] == 3  # views cover live rows only, not slack
        for row, (data, _) in enumerate(sources):
            np.testing.assert_array_equal(k_all[row, :, :4], data[0])

    def test_clone_prefix_small_capacity_raises_clear_error(self):
        data = np.ones((1, NUM_HEADS, 6, HEAD_DIM), np.float32)
        dense, paged = fill_source(data, data)
        for cache in (dense, paged):
            with pytest.raises(ValueError, match="cannot hold"):
                cache.clone_prefix(6, capacity=3)
            clone = cache.clone_prefix(4, capacity=4)  # exact fit is fine
            assert clone.length == 4

    def test_retire_rows_rejects_duplicates(self):
        rng = np.random.default_rng(2)
        dense, paged, _ = make_pair()
        for _ in range(3):
            data = random_kv(rng, 1, 4)
            d_src, p_src = fill_source(data, data)
            dense.admit_row(d_src)
            paged.admit_row(p_src)
        for cache in (dense, paged):
            with pytest.raises(ValueError, match="duplicate"):
                cache.retire_rows(np.array([0, 1, 1]))
            cache.retire_rows(np.array([2, 0]))  # reordering stays legal
            assert cache.batch_size == 2


# ---------------------------------------------------------------------- #
# dense/paged lockstep property suite
# ---------------------------------------------------------------------- #
class TestLockstepParity:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_random_row_ops_keep_dense_and_paged_identical(self, data):
        """Random admit/retire/append/compact sequences leave the paged cache
        holding exactly the dense cache's live spans, and releasing the
        paged cache frees every block."""
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16), label="seed"))
        dense, paged, allocator = make_pair()
        starts: list[int] = []  # per-row live-span starts (the decode mask)

        num_ops = data.draw(st.integers(3, 14), label="num_ops")
        for _ in range(num_ops):
            has_rows = dense.batch_size > 0
            op = data.draw(
                st.sampled_from(
                    ["admit", "append", "retire", "compact", "truncate_row"]
                    if has_rows
                    else ["admit"]
                ),
                label="op",
            )
            if op == "admit":
                width = data.draw(st.integers(1, 10), label="width")
                kv = random_kv(rng, 1, width)
                d_src, p_src = fill_source(kv, 2 * kv, allocator=allocator)
                if width > dense.length and dense.batch_size:
                    # Grow the live end so the wider newcomer fits (the
                    # decode batch's pre-admission realign).
                    old_starts = np.array(starts, dtype=np.int64)
                    starts = [int(s) for s in dense.realign(old_starts, width)]
                    np.testing.assert_array_equal(
                        paged.realign(old_starts, width), starts
                    )
                d_start = dense.admit_row(d_src)
                p_start = paged.admit_row(p_src)
                assert d_start == p_start
                starts.append(d_start)
                p_src.release()
            elif op == "append":
                kv = random_kv(rng, dense.batch_size, 1)
                vv = random_kv(rng, dense.batch_size, 1)
                for layer_d, layer_p in zip(dense.layers, paged.layers):
                    dk, dv = layer_d.append(kv, vv)
                    pk, pv = layer_p.append(kv, vv)
                    for row, start in enumerate(starts):
                        np.testing.assert_array_equal(
                            pk[row, :, start:], dk[row, :, start:]
                        )
                        np.testing.assert_array_equal(
                            pv[row, :, start:], dv[row, :, start:]
                        )
            elif op == "retire":
                perm = data.draw(
                    st.permutations(range(dense.batch_size)), label="keep_order"
                )
                kept = data.draw(st.integers(0, dense.batch_size), label="kept")
                keep = np.array(perm[:kept], dtype=np.int64)
                dense.retire_rows(keep)
                paged.retire_rows(keep)
                starts = [starts[int(i)] for i in keep]
            elif op == "compact":
                widths = [dense.length - s for s in starts]
                new_length = max(max(widths), 1)
                new_starts_d = dense.realign(np.array(starts), new_length)
                new_starts_p = paged.realign(np.array(starts), new_length)
                np.testing.assert_array_equal(new_starts_d, new_starts_p)
                starts = [int(s) for s in new_starts_d]
            elif op == "truncate_row":
                # The speculative-rollback primitive: one row drops its last
                # `drop` positions, batchmates keep theirs (a drop equal to
                # the row's width empties it, like normalising a 1-token
                # prompt into the speculative invariant).
                row = data.draw(st.integers(0, dense.batch_size - 1), label="row")
                drop = data.draw(
                    st.integers(0, dense.length - starts[row]), label="drop"
                )
                dense.truncate_row(row, dense.length - drop)
                paged.truncate_row(row, dense.length - drop)
                starts[row] += drop
            assert_live_spans_equal(dense, paged, starts)

        paged.release()
        assert allocator.blocks_in_use == 0

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        width=st.integers(2, 20),
        prefix=st.integers(1, 20),
    )
    def test_clone_truncate_append_round_trip(self, seed, width, prefix):
        """Batch-1 prefix workflow (the pool's): clone a prefix copy-on-write,
        extend both donor and clone differently, and verify isolation."""
        prefix = min(prefix, width)
        rng = np.random.default_rng(seed)
        kv = random_kv(rng, 1, width)
        _, paged = fill_source(kv, 3 * kv)
        allocator = paged.allocator
        clone = paged.clone_prefix(prefix)
        clone.grow(CAPACITY)
        assert clone.length == prefix

        donor_before = [
            layer.read_span(0, 0, width) for layer in paged.layers
        ]
        extra = random_kv(rng, 1, 2)
        for layer in clone.layers:
            layer.append(extra, -extra)
        # The donor's bytes are untouched by the clone's append (CoW split).
        for layer, (k_before, v_before) in zip(paged.layers, donor_before):
            k_now, v_now = layer.read_span(0, 0, width)
            np.testing.assert_array_equal(k_now, k_before)
            np.testing.assert_array_equal(v_now, v_before)
        for layer in clone.layers:
            k_clone, _ = layer.read_span(0, 0, prefix + 2)
            np.testing.assert_array_equal(k_clone[:, :prefix], kv[0, :, :prefix])
            np.testing.assert_array_equal(k_clone[:, prefix:], extra[0])

        # Persisting the clone (flush + drop the workspace) must hand back
        # the identical bytes from the block store.
        clone.release_workspace()
        assert not clone.layers[0].has_workspace
        for layer in clone.layers:
            k_blocks, v_blocks = layer.read_span(0, 0, prefix + 2)
            np.testing.assert_array_equal(k_blocks[:, :prefix], kv[0, :, :prefix])
            np.testing.assert_array_equal(k_blocks[:, prefix:], extra[0])
            np.testing.assert_array_equal(v_blocks[:, prefix:], -extra[0])

        clone.release()
        paged.release()
        assert allocator.blocks_in_use == 0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_int8_lockstep_within_tolerance(self, seed):
        """The int8 paged cache tracks the dense cache within quantization
        tolerance through admission and decode-style appends."""
        rng = np.random.default_rng(seed)
        dense, paged, allocator = make_pair(kv_dtype="int8")
        starts = []
        for _ in range(3):
            width = int(rng.integers(1, 8))
            kv = random_kv(rng, 1, width)
            d_src = KVCache(NUM_LAYERS, 1, NUM_HEADS, HEAD_DIM, width)
            p_src = PagedKVCache(NUM_LAYERS, 1, allocator, width)
            for layer_d, layer_p in zip(d_src.layers, p_src.layers):
                layer_d.append(kv, 2 * kv)
                layer_p.append(kv, 2 * kv)
            if width > dense.length and dense.batch_size:
                old_starts = np.array(starts, dtype=np.int64)
                starts = [int(s) for s in dense.realign(old_starts, width)]
                paged.realign(old_starts, width)
            starts.append(dense.admit_row(d_src))
            paged.admit_row(p_src)
            p_src.release()
        for _ in range(4):
            kv = random_kv(rng, dense.batch_size, 1)
            vv = random_kv(rng, dense.batch_size, 1)
            for layer_d, layer_p in zip(dense.layers, paged.layers):
                layer_d.append(kv, vv)
                layer_p.append(kv, vv)
        assert_live_spans_equal(dense, paged, starts, atol=0.05)
        paged.release()
        assert allocator.blocks_in_use == 0


# ---------------------------------------------------------------------- #
# copy-on-write sharing economics
# ---------------------------------------------------------------------- #
class TestBlockSharing:
    def test_clone_prefix_shares_blocks(self):
        kv = np.ones((1, NUM_HEADS, 4 * BLOCK_SIZE, HEAD_DIM), np.float32)
        _, paged = fill_source(kv, kv)
        allocator = paged.allocator
        paged.release_workspace()  # persist: blocks become the only storage
        in_use = allocator.blocks_in_use
        assert in_use == 4 * NUM_LAYERS
        clone = paged.clone_prefix(2 * BLOCK_SIZE)
        assert allocator.blocks_in_use == in_use  # zero new blocks
        assert clone.kv_bytes() < paged.kv_bytes()
        clone.release()
        assert allocator.blocks_in_use == in_use

    def test_expand_shares_prefix_blocks_across_rows(self):
        kv = np.ones((1, NUM_HEADS, 2 * BLOCK_SIZE, HEAD_DIM), np.float32)
        _, paged = fill_source(kv, kv)
        allocator = paged.allocator
        expanded = paged.expand(6, extra_capacity=BLOCK_SIZE)
        in_use = allocator.blocks_in_use
        assert in_use == 2 * NUM_LAYERS  # six rows, one shared set of blocks
        extra = np.ones((6, NUM_HEADS, 1, HEAD_DIM), np.float32)
        for layer in expanded.layers:
            layer.append(extra, extra)
        # Appends land in the workspace; persisting the rows is what splits
        # each row's (full, shared) tail block copy-on-write.
        assert allocator.blocks_in_use == in_use
        expanded.release_workspace()
        assert allocator.blocks_in_use == in_use + 6 * NUM_LAYERS
        expanded.release()
        paged.release()
        assert allocator.blocks_in_use == 0

    def test_int8_flush_echoes_stored_values_into_workspace(self):
        """Once a position is persisted, its workspace value IS the
        dequantized stored value — reads never depend on whether the
        workspace was rebuilt from the blocks."""
        rng = np.random.default_rng(3)
        kv = random_kv(rng, 1, 2 * BLOCK_SIZE + 1)
        allocator = BlockAllocator(
            NUM_HEADS, HEAD_DIM, block_size=BLOCK_SIZE, kv_dtype="int8"
        )
        paged = PagedKVCache(NUM_LAYERS, 1, allocator, CAPACITY)
        for layer in paged.layers:
            layer.append(kv, 2 * kv)
        layer = paged.layers[0]
        exact_k, _ = layer.read_span(0, 0, layer.length)
        np.testing.assert_array_equal(exact_k, kv[0])  # unflushed: exact
        layer.flush_row(0)
        ws_k, ws_v = layer.read_span(0, 0, layer.length)
        assert not np.array_equal(ws_k, kv[0])  # now the dequantized codes
        paged.release_workspace()
        blocks_k, blocks_v = layer.read_span(0, 0, layer.length)
        np.testing.assert_array_equal(blocks_k, ws_k)
        np.testing.assert_array_equal(blocks_v, ws_v)
        paged.release()
        assert allocator.blocks_in_use == 0

    @pytest.mark.parametrize("kv_dtype", ["fp32", "int8"])
    @pytest.mark.parametrize("native", [False, True])
    def test_midblock_rollback_then_append_claims_shared_tail_block(
        self, kv_dtype, native
    ):
        """Regression (speculative rollback): rolling a row back *into* a
        partially filled, CoW-shared tail block and then appending must not
        write that block in place — ``truncate_row`` defers the re-claim to
        the flush path, whose ``make_writable`` splits the block.  The donor
        keeps every byte (including the rolled-back position) and ends up
        sole owner of the original block."""
        rng = np.random.default_rng(11)
        width = 2 * BLOCK_SIZE + 2  # the third block is only partially filled
        kv = random_kv(rng, 1, width)
        allocator = BlockAllocator(
            NUM_HEADS, HEAD_DIM, block_size=BLOCK_SIZE, kv_dtype=kv_dtype
        )
        donor = PagedKVCache(1, 1, allocator, CAPACITY, native=native)
        for layer in donor.layers:
            layer.append(kv, -kv)
        donor.release_workspace()  # persist: three blocks, sole owner
        donor_layer = donor.layers[0]
        donor_k, donor_v = donor_layer.read_span(0, 0, width)
        tail_block = donor_layer.tables[0][2]

        clone = donor.clone_prefix(width, capacity=CAPACITY)
        clone_layer = clone.layers[0]
        assert clone_layer.tables[0][2] == tail_block
        assert allocator.refcount(tail_block) == 2

        # The rollback cut lands mid-block: the kept partial block stays
        # shared (nothing is freed, nothing is written)...
        clone.truncate_row(0, width - 1)
        assert allocator.refcount(tail_block) == 2
        extra = random_kv(rng, 1, 1)
        for layer in clone.layers:
            layer.append(extra, extra)
        # ...so persisting the re-decoded position must claim it via the
        # copy-on-write split instead of writing the shared bytes.
        clone_layer.flush_row(0)
        assert clone_layer.tables[0][2] != tail_block
        assert allocator.refcount(tail_block) == 1
        assert allocator.refcount(clone_layer.tables[0][2]) == 1
        k_now, v_now = donor_layer.read_span(0, 0, width)
        np.testing.assert_array_equal(k_now, donor_k)
        np.testing.assert_array_equal(v_now, donor_v)
        # The clone sees the kept prefix plus its own new position (its span
        # shifted right by the dropped column: [1, width + 1)).
        ck, _ = clone_layer.read_span(0, 1, width + 1)
        np.testing.assert_array_equal(ck[:, : width - 1], donor_k[:, : width - 1])
        clone.release()
        donor.release()
        assert allocator.blocks_in_use == 0

    def test_pool_byte_budget_counts_shared_blocks_once(self, model):
        """CoW-shared prefix blocks must not be double-counted against the
        pool's byte budget."""
        rng = np.random.default_rng(4)
        head = rng.integers(1, VOCAB, size=3 * BLOCK_SIZE_MODEL)
        pool = PrefixCachePool(model, kv_layout="paged", min_reuse_tokens=8)
        base = model.make_paged_cache(1, model.config.max_position)
        with no_grad():
            model.forward_incremental(head[None, :], base)
        pool.checkin(head, base)
        solo_bytes = pool.kv_bytes()
        # A second entry extending the head shares its blocks copy-on-write.
        longer = np.concatenate([head, rng.integers(1, VOCAB, size=4)])
        clone = pool.checkout(longer)[0]
        with no_grad():
            model.forward_incremental(longer[None, clone.length :], clone)
        pool.checkin(longer, clone)
        assert len(pool) >= 1
        naive = sum(e.cache.kv_bytes() for e in pool._entries.values())
        assert pool.kv_bytes() < naive or len(pool) == 1
        assert pool.kv_bytes() < 2 * solo_bytes  # the head is counted once
        pool.clear()

    def test_paged_admission_from_prefill_is_zero_copy(self, model, ragged_prompts):
        """Admitting a paged batch-1 prefill persists it once and shares the
        blocks with the live row instead of copying them."""
        batch = model.make_decode_batch(kv_layout="paged")
        allocator = model.paged_allocator()
        prompt = ragged_prompts[1]
        prefill = model.make_paged_cache(1, len(prompt) + 1)
        with no_grad():
            model.forward_incremental(prompt[None, :-1], prefill)
        from repro.models.decoder import DecodeState

        batch.admit(DecodeState(prompt_ids=prompt, max_new_tokens=4), prefill_cache=prefill)
        # Admission flushed the prompt into blocks exactly once; the live
        # row references those same blocks (ref-count 2), no copies.
        per_layer = (len(prompt) + BLOCK_SIZE_MODEL - 1) // BLOCK_SIZE_MODEL
        assert allocator.blocks_in_use == per_layer * len(batch.cache.layers)
        shared_block = batch.cache.layers[0].tables[0][0]
        assert allocator.refcount(shared_block) == 2
        prefill.release()
        assert allocator.refcount(shared_block) == 1
        while batch.num_rows:
            batch.step()
        del batch
        import gc

        gc.collect()
        assert allocator.blocks_in_use == 0


# ---------------------------------------------------------------------- #
# engine-level parity
# ---------------------------------------------------------------------- #
class TestEngineParity:
    def _run_engine(self, model, prompts, stop_ids, **engine_kwargs):
        engine = ContinuousBatchingEngine(
            model, max_batch_rows=4, min_admit_rows=2, **engine_kwargs
        )
        results = [None] * len(prompts)
        submitted = 0
        while submitted < len(prompts) or engine.has_work:
            for _ in range(2):
                if submitted < len(prompts):
                    engine.submit(
                        prompts[submitted], max_new_tokens=12, stop_ids=stop_ids
                    )
                    submitted += 1
            for request in engine.step():
                results[request.request_id] = request.result
        return results

    @pytest.mark.parametrize("kv_dtype", ["fp32", "int8"])
    def test_paged_engine_matches_dense_under_staggered_arrivals(
        self, model, ragged_prompts, kv_dtype
    ):
        stop_ids = {3, 5, 7}
        dense = self._run_engine(model, ragged_prompts, stop_ids)
        paged = self._run_engine(
            model, ragged_prompts, stop_ids, kv_layout="paged", kv_dtype=kv_dtype
        )
        assert_generations_equal(paged, dense, context=f"paged/{kv_dtype} vs dense")
        sequential = [
            model.generate(p, max_new_tokens=12, stop_ids=stop_ids)
            for p in ragged_prompts
        ]
        assert_generations_equal(paged, sequential, context="paged vs sequential")

    def test_paged_engine_releases_every_block_after_drain(self, model, ragged_prompts):
        engine = ContinuousBatchingEngine(model, max_batch_rows=4, kv_layout="paged")
        allocator = model.paged_allocator()
        for prompt in ragged_prompts:
            engine.submit(prompt, max_new_tokens=8, stop_ids={3})
        engine.drain()
        assert engine.batch.cache.kv_bytes() == 0
        assert allocator.blocks_in_use == 0
        assert allocator.peak_blocks_in_use > 0

    def test_paged_pool_assisted_prefill_keeps_outputs_identical(
        self, model, ragged_prompts
    ):
        """Pool hits served copy-on-write from the shared allocator do not
        change outputs, and checked-in entries survive engine traffic."""
        head = np.asarray(ragged_prompts[5], dtype=np.int64)
        prompts = [
            np.concatenate([head, np.asarray(p[:4], dtype=np.int64)])
            for p in ragged_prompts[:6]
        ]
        pool = PrefixCachePool(model, kv_layout="paged", min_reuse_tokens=4)
        baseline = self._run_engine(model, prompts, {3}, kv_layout="paged")

        engine = ContinuousBatchingEngine(
            model, max_batch_rows=2, cache_pool=pool, kv_layout="paged"
        )
        results = [None] * len(prompts)
        submitted = 0
        while submitted < len(prompts) or engine.has_work:
            if submitted < len(prompts):  # one at a time: lone pool prefills
                engine.submit(prompts[submitted], max_new_tokens=12, stop_ids={3})
                submitted += 1
            for request in engine.step():
                results[request.request_id] = request.result
        assert_generations_equal(results, baseline, context="pooled vs private paged")
        assert pool.stats.hits > 0
        assert pool.kv_bytes() > 0
        pool.clear()
        assert pool.kv_bytes() == 0  # cleared entries returned their blocks
        assert engine.batch.cache.kv_bytes() == 0

    def test_generate_batch_paged_matches_dense(self, model, ragged_prompts):
        dense = model.generate_batch(ragged_prompts, max_new_tokens=10, stop_ids={3})
        paged = model.generate_batch(
            ragged_prompts, max_new_tokens=10, stop_ids={3}, kv_layout="paged"
        )
        assert_generations_equal(paged, dense, context="generate_batch paged")

    def test_dense_engine_rejects_int8(self, model):
        with pytest.raises(ValueError, match="paged"):
            ContinuousBatchingEngine(model, kv_layout="dense", kv_dtype="int8")
        with pytest.raises(ValueError, match="kv_layout"):
            model.make_decode_batch(kv_layout="ragged")
