"""Tests for configs, encoder/decoder models, LoRA, quantization, pre-training, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    DECODER_CONFIGS,
    ENCODER_CONFIGS,
    DecoderLM,
    EncoderForSequenceClassification,
    LoRALinear,
    QuantizedLinear,
    apply_lora,
    get_config,
    lora_parameter_summary,
    merge_lora,
    quantize_model,
)
from repro.models.pretrain import pretrain_decoder_clm, pretrain_encoder_mlm
from repro.models.quantization import quantization_error
from repro.nn import Linear
from repro.tensor import Tensor

VOCAB = 64


def tiny_encoder(name="distilbert-base-uncased", vocab=VOCAB):
    return EncoderForSequenceClassification(get_config(name), vocab, rng=0)


def tiny_decoder(name="gpt2", vocab=VOCAB):
    return DecoderLM(get_config(name), vocab, rng=0)


class TestConfigs:
    def test_twelve_encoders_three_decoders(self):
        assert len(ENCODER_CONFIGS) == 12
        assert len(DECODER_CONFIGS) == 3

    def test_aliases_resolve(self):
        assert get_config("Mistral").name == "mistral-7b"
        assert get_config("llama2").name == "llama2-7b"
        with pytest.raises(KeyError):
            get_config("gpt5")

    def test_family_size_ordering_preserved(self):
        def params(name):
            return tiny_encoder(name).num_parameters()

        assert params("bert-large-uncased") > params("bert-base-uncased")
        assert params("roberta-large") > params("roberta-base")
        assert params("distilbert-base-uncased") <= params("bert-base-uncased")
        assert params("albert-base-v2") < params("bert-base-uncased")

    def test_invalid_config_values(self):
        with pytest.raises(ValueError):
            get_config("bert-base-uncased").scaled(hidden_size=30, num_heads=4)
        with pytest.raises(ValueError):
            get_config("bert-base-uncased").scaled(kind="other")


class TestEncoder:
    def test_classification_logits_shape(self):
        model = tiny_encoder()
        ids = np.random.default_rng(0).integers(0, VOCAB, size=(3, 10))
        mask = np.ones((3, 10), dtype=bool)
        logits = model(ids, mask)
        assert logits.shape == (3, 2)

    def test_predict_proba_sums_to_one(self):
        model = tiny_encoder()
        ids = np.random.default_rng(0).integers(0, VOCAB, size=(4, 8))
        probs = model.predict_proba(ids, np.ones((4, 8), dtype=bool))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), rtol=1e-5)
        assert model.predict(ids).shape == (4,)

    def test_mlm_logits_cover_vocab(self):
        model = tiny_encoder()
        ids = np.zeros((2, 6), dtype=np.int64)
        assert model.mlm_logits(ids).shape == (2, 6, VOCAB)

    def test_freeze_backbone_leaves_classifier_trainable(self):
        model = tiny_encoder()
        model.freeze_backbone()
        trainable = {n for n, p in model.named_parameters() if p.requires_grad}
        assert trainable == {"classifier.weight", "classifier.bias"}

    def test_rejects_decoder_config(self):
        with pytest.raises(ValueError):
            EncoderForSequenceClassification(get_config("gpt2"), VOCAB)

    def test_rejects_bad_input_shape(self):
        model = tiny_encoder()
        with pytest.raises(ValueError):
            model(np.zeros(5, dtype=np.int64))


class TestDecoder:
    def test_lm_logits_shape(self):
        model = tiny_decoder()
        ids = np.random.default_rng(0).integers(0, VOCAB, size=(2, 12))
        assert model(ids).shape == (2, 12, VOCAB)

    def test_sequence_log_prob_is_negative_and_sane(self):
        model = tiny_decoder()
        seq = np.random.default_rng(1).integers(0, VOCAB, size=10)
        lp = model.sequence_log_prob(seq, prefix_length=6)
        assert lp < 0
        assert lp > -100

    def test_sequence_log_prob_validation(self):
        model = tiny_decoder()
        with pytest.raises(ValueError):
            model.sequence_log_prob(np.arange(5), prefix_length=5)
        with pytest.raises(ValueError):
            model.sequence_log_prob(np.zeros((2, 3), dtype=np.int64), prefix_length=1)

    def test_greedy_generation_extends_and_stops(self):
        model = tiny_decoder()
        model.eval()
        prompt = np.array([1, 2, 3], dtype=np.int64)
        out = model.generate(prompt, max_new_tokens=5)
        assert len(out) <= 8 and len(out) > 3
        np.testing.assert_array_equal(out[:3], prompt)

    def test_generation_with_stop_token(self):
        model = tiny_decoder()
        model.eval()
        log_probs = model.next_token_log_probs(np.array([1, 2, 3]))
        greedy = int(np.argmax(log_probs))
        out = model.generate(np.array([1, 2, 3]), max_new_tokens=8, stop_ids={greedy})
        assert out[-1] == greedy and len(out) == 4

    def test_context_length_guard(self):
        model = tiny_decoder()
        too_long = np.zeros((1, model.config.max_position + 1), dtype=np.int64)
        with pytest.raises(ValueError):
            model(too_long)

    def test_rejects_encoder_config(self):
        with pytest.raises(ValueError):
            DecoderLM(get_config("bert-base-uncased"), VOCAB)


class TestLoRA:
    def test_initial_output_unchanged(self):
        base = Linear(8, 4, rng=0)
        wrapped = LoRALinear(base, rank=2, alpha=4, rng=1)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 8)).astype(np.float32))
        np.testing.assert_allclose(wrapped(x).data, base(x).data, atol=1e-6)

    def test_base_frozen_adapters_trainable(self):
        wrapped = LoRALinear(Linear(8, 4, rng=0), rank=2)
        trainable = {n for n, p in wrapped.named_parameters() if p.requires_grad}
        assert trainable == {"lora_a", "lora_b"}

    def test_apply_lora_counts_and_summary(self):
        model = tiny_decoder()
        total_before = model.num_parameters()
        adapted = apply_lora(model, rank=2, alpha=4, rng=0)
        assert adapted == model.config.num_layers * 4
        summary = lora_parameter_summary(model)
        assert 0 < summary.trainable_parameters < summary.total_parameters
        assert summary.total_parameters > total_before  # adapters add parameters

    def test_apply_lora_requires_matching_targets(self):
        model = tiny_decoder()
        with pytest.raises(ValueError):
            apply_lora(model, target_names=("does_not_exist",))

    def test_merge_lora_preserves_forward(self):
        model = tiny_decoder()
        apply_lora(model, rank=2, alpha=4, rng=0)
        # Perturb an adapter so the merge is non-trivial.
        for _, module in model.named_modules():
            if isinstance(module, LoRALinear):
                module.lora_b.data += 0.01
        ids = np.random.default_rng(2).integers(0, VOCAB, size=(1, 6))
        model.eval()
        before = model(ids).data
        merged = merge_lora(model)
        assert merged > 0
        after = model(ids).data
        np.testing.assert_allclose(before, after, atol=1e-4)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            LoRALinear(Linear(4, 4, rng=0), rank=0)


class TestQuantization:
    def test_quantized_linear_approximates_base(self):
        base = Linear(16, 8, rng=0)
        quantized = QuantizedLinear(base, bits=8)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 16)).astype(np.float32))
        np.testing.assert_allclose(quantized(x).data, base(x).data, atol=0.05)

    def test_error_decreases_with_more_bits(self):
        base = Linear(32, 16, rng=0)
        errors = [quantization_error(base, bits=b) for b in (2, 4, 8)]
        assert errors[0] > errors[1] > errors[2]

    def test_quantize_model_replaces_targets(self):
        model = tiny_decoder()
        replaced = quantize_model(model, bits=4)
        assert replaced == model.config.num_layers * 4
        ids = np.zeros((1, 4), dtype=np.int64)
        assert model(ids).shape == (1, 4, VOCAB)

    def test_qlora_composition(self):
        model = tiny_decoder()
        quantize_model(model, bits=8)
        adapted = apply_lora(model, rank=2, rng=0)
        assert adapted == model.config.num_layers * 4
        ids = np.zeros((1, 4), dtype=np.int64)
        assert model(ids).shape == (1, 4, VOCAB)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizedLinear(Linear(4, 4, rng=0), bits=3)


class TestPretrainingAndRegistry:
    def test_mlm_pretraining_reduces_loss(self, tokenizer, small_dataset):
        model = EncoderForSequenceClassification(
            get_config("distilbert-base-uncased"), tokenizer.vocab_size, rng=0
        )
        corpus = small_dataset.train.sentences()[:60]
        result = pretrain_encoder_mlm(model, tokenizer, corpus, steps=25, batch_size=8, seed=0)
        assert result.steps == 25
        assert result.final_loss < result.mean_loss * 1.5  # broadly decreasing

    def test_clm_pretraining_runs(self, tokenizer, small_dataset):
        model = DecoderLM(get_config("gpt2"), tokenizer.vocab_size, rng=0)
        corpus = small_dataset.train.sentences()[:40]
        result = pretrain_decoder_clm(model, tokenizer, corpus, steps=10, batch_size=4, seed=0)
        assert result.steps == 10 and np.isfinite(result.final_loss)

    def test_empty_corpus_rejected(self, tokenizer):
        model = DecoderLM(get_config("gpt2"), tokenizer.vocab_size, rng=0)
        with pytest.raises(ValueError):
            pretrain_decoder_clm(model, tokenizer, [], steps=1)

    def test_registry_caches_pretrained_weights(self, registry):
        first = registry.load_encoder("distilbert-base-uncased")
        assert registry.is_cached("distilbert-base-uncased")
        second = registry.load_encoder("distilbert-base-uncased")
        np.testing.assert_allclose(
            first.backbone.token_embedding.weight.data,
            second.backbone.token_embedding.weight.data,
        )
        assert first is not second

    def test_registry_kind_checks(self, registry):
        with pytest.raises(ValueError):
            registry.load_encoder("gpt2")
        with pytest.raises(ValueError):
            registry.load_decoder("bert-base-uncased")

    def test_registry_unpretrained_load_differs_from_pretrained(self, registry):
        pretrained = registry.load_encoder("albert-base-v2")
        raw = registry.load_encoder("albert-base-v2", pretrained=False)
        assert not np.allclose(
            pretrained.backbone.token_embedding.weight.data,
            raw.backbone.token_embedding.weight.data,
        )
