"""Property tests for the KV-checkpoint wire format (``RKV1``).

The serialization layer (:mod:`repro.nn.serialization`,
:meth:`~repro.nn.KVCache.serialize`, :meth:`~repro.nn.PagedKVCache.serialize`,
pool-entry export/import in :mod:`repro.serving.pool`) is what lets a warm
prefix migrate between fleet workers and pools warm-start from disk.  Pinned
here:

* round-trip parity — dense fp32, paged fp32 and paged int8 caches restore
  with identical persisted content, and a re-export reproduces the *exact
  input bytes* (int8 codes + scales travel verbatim; quantization is never
  re-run);
* capacity independence — the donor's allocation slack is not part of the
  checkpoint, so restoring at a different capacity re-exports identically;
* restored-entry behaviour — an engine whose pool was warm-started from an
  imported entry emits greedy tokens identical to plain cached generation,
  while actually hitting the restored prefix;
* block hygiene — restoring and releasing paged checkpoints returns the
  allocator to its baseline ``blocks_in_use`` (no leaked or double-freed
  blocks), and a corrupt checkpoint leaks nothing;
* rejection — *any* strict prefix of a valid checkpoint, bad magic,
  undeclared trailing bytes, wrong ``kind`` and layout/dtype mismatches all
  raise ``ValueError`` mentioning ``corrupt KV checkpoint`` (or the
  specific mismatch) instead of dying inside numpy.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import DecoderLM, get_config
from repro.nn import BlockAllocator, KVCache, PagedKVCache
from repro.nn.serialization import MAGIC, peek_kind
from repro.serving import ContinuousBatchingEngine, PrefixCachePool

VOCAB = 64
NUM_LAYERS = 2
NUM_HEADS = 2
HEAD_DIM = 4
BLOCK_SIZE = 4


@pytest.fixture(scope="module")
def model():
    m = DecoderLM(get_config("gpt2"), VOCAB, rng=0)
    m.eval()
    return m


def fill_dense(rng, batch: int, width: int, capacity: int | None = None) -> KVCache:
    cache = KVCache(NUM_LAYERS, batch, NUM_HEADS, HEAD_DIM, capacity or width)
    for layer in cache.layers:
        k = rng.normal(size=(batch, NUM_HEADS, width, HEAD_DIM)).astype(np.float32)
        v = rng.normal(size=(batch, NUM_HEADS, width, HEAD_DIM)).astype(np.float32)
        layer.append(k, v)
    return cache


def fill_paged(rng, allocator, batch: int, width: int) -> PagedKVCache:
    cache = PagedKVCache(NUM_LAYERS, batch, allocator, width)
    for layer in cache.layers:
        k = rng.normal(size=(batch, NUM_HEADS, width, HEAD_DIM)).astype(np.float32)
        v = rng.normal(size=(batch, NUM_HEADS, width, HEAD_DIM)).astype(np.float32)
        layer.append(k, v)
    return cache


def assert_same_content(a, b) -> None:
    assert a.length == b.length
    assert a.batch_size == b.batch_size
    for layer_a, layer_b in zip(a.layers, b.layers):
        for row in range(a.batch_size):
            ka, va = layer_a.read_span(row, 0, a.length)
            kb, vb = layer_b.read_span(row, 0, b.length)
            np.testing.assert_array_equal(ka, kb)
            np.testing.assert_array_equal(va, vb)


# ---------------------------------------------------------------------- #
# dense round trip
# ---------------------------------------------------------------------- #
class TestDenseRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        batch=st.integers(1, 3),
        width=st.integers(1, 24),
    )
    def test_round_trip_is_byte_identical(self, seed, batch, width):
        rng = np.random.default_rng(seed)
        cache = fill_dense(rng, batch, width)
        blob = cache.serialize()
        assert peek_kind(blob) == "kv-dense"
        restored = KVCache.deserialize(blob)
        assert_same_content(cache, restored)
        assert restored.serialize() == blob

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16), extra=st.integers(0, 32))
    def test_capacity_slack_is_not_part_of_the_checkpoint(self, seed, extra):
        rng = np.random.default_rng(seed)
        blob = fill_dense(rng, 2, 9, capacity=9 + extra).serialize()
        restored = KVCache.deserialize(blob, capacity=9 + (extra * 3) % 17)
        assert restored.serialize() == blob

    def test_restore_capacity_must_hold_the_snapshot(self):
        blob = fill_dense(np.random.default_rng(0), 1, 8).serialize()
        with pytest.raises(ValueError, match="capacity"):
            KVCache.deserialize(blob, capacity=4)


# ---------------------------------------------------------------------- #
# paged round trip (fp32 and int8)
# ---------------------------------------------------------------------- #
class TestPagedRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        batch=st.integers(1, 3),
        width=st.integers(1, 3 * BLOCK_SIZE + 2),
        kv_dtype=st.sampled_from(["fp32", "int8"]),
    )
    def test_round_trip_is_byte_identical_and_leaks_nothing(
        self, seed, batch, width, kv_dtype
    ):
        rng = np.random.default_rng(seed)
        allocator = BlockAllocator(
            NUM_HEADS, HEAD_DIM, block_size=BLOCK_SIZE, kv_dtype=kv_dtype
        )
        cache = fill_paged(rng, allocator, batch, width)
        blob = cache.serialize()
        assert peek_kind(blob) == "kv-paged"
        baseline = allocator.blocks_in_use

        restored = PagedKVCache.deserialize(blob, allocator)
        # int8 codes + scales travel verbatim: the persisted bytes are
        # bit-identical to the donor's, so re-export reproduces the input.
        assert restored.serialize() == blob
        assert_same_content(cache, restored)

        restored.release()
        assert allocator.blocks_in_use == baseline
        cache.release()
        assert allocator.blocks_in_use == 0

    def test_mismatched_allocator_geometry_is_rejected_without_leaking(self):
        allocator = BlockAllocator(NUM_HEADS, HEAD_DIM, block_size=BLOCK_SIZE)
        blob = fill_paged(np.random.default_rng(3), allocator, 1, 10).serialize()
        other = BlockAllocator(NUM_HEADS, HEAD_DIM, block_size=BLOCK_SIZE * 2)
        with pytest.raises(ValueError, match="does not match"):
            PagedKVCache.deserialize(blob, other)
        assert other.blocks_in_use == 0
        mismatched = BlockAllocator(
            NUM_HEADS, HEAD_DIM, block_size=BLOCK_SIZE, kv_dtype="int8"
        )
        with pytest.raises(ValueError, match="does not match"):
            PagedKVCache.deserialize(blob, mismatched)
        assert mismatched.blocks_in_use == 0

    def test_wrong_kind_is_rejected(self):
        allocator = BlockAllocator(NUM_HEADS, HEAD_DIM, block_size=BLOCK_SIZE)
        dense_blob = fill_dense(np.random.default_rng(5), 1, 6).serialize()
        with pytest.raises(ValueError, match="corrupt KV checkpoint"):
            PagedKVCache.deserialize(dense_blob, allocator)
        assert allocator.blocks_in_use == 0
        paged_blob = fill_paged(np.random.default_rng(5), allocator, 1, 6).serialize()
        with pytest.raises(ValueError, match="corrupt KV checkpoint"):
            KVCache.deserialize(paged_blob)


# ---------------------------------------------------------------------- #
# corrupt-bytes rejection
# ---------------------------------------------------------------------- #
class TestCorruptRejection:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**16), frac=st.floats(0.0, 1.0, exclude_max=True))
    def test_every_strict_prefix_is_rejected(self, seed, frac):
        """Truncation at *any* byte offset raises the clear ValueError."""
        blob = fill_dense(np.random.default_rng(seed), 1, 7).serialize()
        cut = int(frac * len(blob))
        with pytest.raises(ValueError, match="corrupt KV checkpoint"):
            KVCache.deserialize(blob[:cut])

    def test_bad_magic_and_trailing_bytes_are_rejected(self):
        blob = fill_dense(np.random.default_rng(1), 1, 5).serialize()
        with pytest.raises(ValueError, match="bad magic"):
            KVCache.deserialize(b"XXXX" + blob[4:])
        assert blob[:4] == MAGIC
        with pytest.raises(ValueError, match="trailing bytes"):
            KVCache.deserialize(blob + b"\x00\x01")
        with pytest.raises(ValueError, match="corrupt KV checkpoint"):
            KVCache.deserialize(b"")


# ---------------------------------------------------------------------- #
# pool-entry export / import
# ---------------------------------------------------------------------- #
POOL_CONFIGS = [("dense", "fp32"), ("paged", "fp32"), ("paged", "int8")]


def prefill_pool(model, pool, prompt):
    cache, reused = pool.checkout(prompt)
    assert reused == 0
    from repro.tensor import no_grad

    with no_grad():
        model.forward_incremental(prompt[None, :], cache, last_logits_only=True)
    pool.checkin(prompt, cache)


class TestPoolEntryRoundTrip:
    @pytest.mark.parametrize("kv_layout,kv_dtype", POOL_CONFIGS)
    def test_export_import_reexport_is_byte_identical(self, model, kv_layout, kv_dtype):
        rng = np.random.default_rng(11)
        prompt = rng.integers(1, VOCAB, size=24)
        donor = PrefixCachePool(model, kv_layout=kv_layout, kv_dtype=kv_dtype)
        prefill_pool(model, donor, prompt)

        blob = donor.export_entry(prompt)
        assert blob is not None
        assert peek_kind(blob) == "pool-entry"

        receiver = PrefixCachePool(model, kv_layout=kv_layout, kv_dtype=kv_dtype)
        assert receiver.import_entry(blob) == len(prompt)
        assert len(receiver) == 1
        # The restored entry's persisted KV is bit-identical to the donor's:
        # a re-export reproduces the exact bytes (the int8 case would fail
        # here if import re-quantized instead of shipping codes verbatim).
        assert receiver.export_entry(prompt) == blob

    @pytest.mark.parametrize("kv_layout,kv_dtype", POOL_CONFIGS)
    def test_restored_entry_serves_greedy_identical_tokens(
        self, model, kv_layout, kv_dtype
    ):
        rng = np.random.default_rng(23)
        head = rng.integers(1, VOCAB, size=24)
        prompt = np.concatenate([head, rng.integers(1, VOCAB, size=5)])

        donor = PrefixCachePool(model, kv_layout=kv_layout, kv_dtype=kv_dtype)
        prefill_pool(model, donor, head)
        blob = donor.export_entry(head)

        receiver = PrefixCachePool(model, kv_layout=kv_layout, kv_dtype=kv_dtype)
        receiver.import_entry(blob)
        engine = ContinuousBatchingEngine(
            model, cache_pool=receiver, kv_layout=kv_layout, kv_dtype=kv_dtype
        )
        request = engine.submit(prompt, max_new_tokens=8)
        engine.drain()
        assert receiver.stats.hits == 1  # the restored prefix actually served
        assert request.reused_tokens == len(head)
        expected = model.generate(prompt, max_new_tokens=8, use_cache=True)
        np.testing.assert_array_equal(request.result, expected)

    def test_layout_mismatch_and_corrupt_entries_are_rejected(self, model):
        rng = np.random.default_rng(7)
        prompt = rng.integers(1, VOCAB, size=16)
        donor = PrefixCachePool(model, kv_layout="dense")
        prefill_pool(model, donor, prompt)
        blob = donor.export_entry(prompt)

        paged_pool = PrefixCachePool(model, kv_layout="paged")
        with pytest.raises(ValueError, match="serialized as dense"):
            paged_pool.import_entry(blob)
        with pytest.raises(ValueError, match="corrupt KV checkpoint"):
            donor.import_entry(blob[: len(blob) // 2])
        with pytest.raises(ValueError, match="corrupt KV checkpoint"):
            donor.import_entry(fill_dense(rng, 1, 4).serialize())  # not a pool entry

    def test_paged_import_releases_blocks_on_pool_clear(self, model):
        rng = np.random.default_rng(31)
        prompt = rng.integers(1, VOCAB, size=20)
        allocator = model.paged_allocator("fp32")
        baseline = allocator.blocks_in_use
        donor = PrefixCachePool(model, kv_layout="paged")
        prefill_pool(model, donor, prompt)
        blob = donor.export_entry(prompt)

        receiver = PrefixCachePool(model, kv_layout="paged")
        receiver.import_entry(blob)
        assert allocator.blocks_in_use > baseline
        donor.clear()
        receiver.clear()
        assert allocator.blocks_in_use == baseline
