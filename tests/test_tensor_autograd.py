"""Unit and property-based tests for the autograd engine.

Gradients of every primitive are checked against central finite differences
on random inputs (hypothesis), which is the strongest invariant the engine
must satisfy: if these hold, every model built on top trains correctly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor, functional as F, no_grad


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central finite-difference gradient of a scalar-valued fn."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(x)
        flat[i] = original - eps
        down = fn(x)
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def analytic_grad(fn_tensor, x: np.ndarray) -> np.ndarray:
    t = Tensor(x.astype(np.float32), requires_grad=True)
    out = fn_tensor(t)
    out.backward()
    return t.grad.astype(np.float64)


ARRAYS = st.integers(min_value=1, max_value=4).flatmap(
    lambda n: st.lists(
        st.floats(min_value=-2.0, max_value=2.0, allow_nan=False, width=32),
        min_size=n,
        max_size=n,
    )
)


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "name,tensor_fn,numpy_fn",
        [
            ("exp", lambda t: t.exp().sum(), lambda x: np.exp(x).sum()),
            ("tanh", lambda t: t.tanh().sum(), lambda x: np.tanh(x).sum()),
            ("sigmoid", lambda t: t.sigmoid().sum(), lambda x: (1 / (1 + np.exp(-x))).sum()),
            ("square", lambda t: (t * t).sum(), lambda x: (x * x).sum()),
            ("gelu", lambda t: t.gelu().sum(),
             lambda x: (0.5 * x * (1 + np.tanh(np.sqrt(2 / np.pi) * (x + 0.044715 * x**3)))).sum()),
        ],
    )
    def test_gradient_matches_finite_difference(self, name, tensor_fn, numpy_fn):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 4)).astype(np.float64)
        analytic = analytic_grad(tensor_fn, x)
        numeric = numerical_grad(lambda a: float(numpy_fn(a)), x.copy())
        np.testing.assert_allclose(analytic, numeric, rtol=1e-2, atol=1e-2)

    @settings(max_examples=25, deadline=None)
    @given(values=ARRAYS)
    def test_relu_gradient_is_indicator(self, values):
        x = np.array(values, dtype=np.float32)
        t = Tensor(x, requires_grad=True)
        t.relu().sum().backward()
        expected = (x > 0).astype(np.float32)
        np.testing.assert_allclose(t.grad, expected)

    def test_log_and_sqrt_gradients(self):
        x = np.abs(np.random.default_rng(1).normal(size=(5,))) + 0.5
        np.testing.assert_allclose(
            analytic_grad(lambda t: t.log().sum(), x), 1.0 / x, rtol=1e-3
        )
        np.testing.assert_allclose(
            analytic_grad(lambda t: t.sqrt().sum(), x), 0.5 / np.sqrt(x), rtol=1e-3
        )


class TestArithmeticAndBroadcasting:
    def test_add_broadcast_unbroadcasts_gradient(self):
        a = Tensor(np.ones((3, 4), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((4,), dtype=np.float32), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3.0 * np.ones(4))

    def test_mul_gradients(self):
        rng = np.random.default_rng(2)
        a_val, b_val = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        a = Tensor(a_val.astype(np.float32), requires_grad=True)
        b = Tensor(b_val.astype(np.float32), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b_val, rtol=1e-5, atol=1e-5)
        np.testing.assert_allclose(b.grad, a_val, rtol=1e-5, atol=1e-5)

    def test_div_and_pow(self):
        x = np.array([1.0, 2.0, 4.0])
        np.testing.assert_allclose(
            analytic_grad(lambda t: (1.0 / t).sum(), x), -1.0 / x**2, rtol=1e-3
        )
        np.testing.assert_allclose(
            analytic_grad(lambda t: (t**3).sum(), x), 3 * x**2, rtol=1e-3
        )

    def test_matmul_gradients_match_finite_difference(self):
        rng = np.random.default_rng(3)
        a_val = rng.normal(size=(3, 4))
        b_val = rng.normal(size=(4, 2)).astype(np.float32)

        def loss_fn(a_arr):
            return float((a_arr @ b_val.astype(np.float64)).sum())

        analytic = analytic_grad(lambda t: t.matmul(Tensor(b_val)).sum(), a_val)
        numeric = numerical_grad(loss_fn, a_val.copy())
        np.testing.assert_allclose(analytic, numeric, rtol=1e-2, atol=1e-2)

    def test_batched_matmul_shapes(self):
        a = Tensor(np.random.default_rng(4).normal(size=(2, 5, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(np.random.default_rng(5).normal(size=(2, 3, 7)).astype(np.float32), requires_grad=True)
        out = a.matmul(b)
        assert out.shape == (2, 5, 7)
        out.sum().backward()
        assert a.grad.shape == (2, 5, 3)
        assert b.grad.shape == (2, 3, 7)

    def test_neg_sub(self):
        a = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        b = Tensor(np.array([3.0, 5.0], dtype=np.float32), requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [-1, -1])


class TestReductionsAndShapes:
    def test_mean_gradient(self):
        x = np.random.default_rng(6).normal(size=(4, 5))
        grad = analytic_grad(lambda t: t.mean(), x)
        np.testing.assert_allclose(grad, np.full_like(x, 1.0 / 20), rtol=1e-5)

    def test_sum_axis_keepdims(self):
        t = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        out = t.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_max_gradient_routes_to_argmax(self):
        t = Tensor(np.array([[1.0, 5.0, 2.0]], dtype=np.float32), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0, 0.0]])

    def test_reshape_transpose_roundtrip_gradient(self):
        t = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4), requires_grad=True)
        out = t.reshape(4, 3).transpose()
        assert out.shape == (3, 4)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, 2 * np.ones((3, 4)))

    def test_getitem_scatter_gradient(self):
        t = Tensor(np.arange(10, dtype=np.float32), requires_grad=True)
        t[np.array([1, 1, 3])].sum().backward()
        expected = np.zeros(10)
        expected[1] = 2.0
        expected[3] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_take_rows_gradient_accumulates(self):
        t = Tensor(np.ones((4, 2), dtype=np.float32), requires_grad=True)
        idx = np.array([[0, 0], [3, 1]])
        out = t.take_rows(idx)
        assert out.shape == (2, 2, 2)
        out.sum().backward()
        np.testing.assert_allclose(t.grad[:, 0], [2.0, 1.0, 0.0, 1.0])

    def test_cat_and_stack(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        Tensor.cat([a, b], axis=0).sum().backward()
        assert a.grad.shape == (2, 2) and b.grad.shape == (3, 2)
        c = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        d = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        Tensor.stack([c, d]).sum().backward()
        np.testing.assert_allclose(c.grad, np.ones(3))

    def test_masked_fill_blocks_gradient(self):
        t = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        t.masked_fill(mask, -1e9).sum().backward()
        np.testing.assert_allclose(t.grad, 1.0 - mask.astype(np.float32))


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(7).normal(size=(4, 6)).astype(np.float32))
        probs = F.softmax(x, axis=-1).data
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), rtol=1e-5)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(8).normal(size=(3, 5)).astype(np.float32))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data + 1e-12), atol=1e-4
        )

    def test_softmax_gradient_finite_difference(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(2, 4))
        weights = rng.normal(size=(2, 4)).astype(np.float32)

        def loss_np(arr):
            e = np.exp(arr - arr.max(axis=-1, keepdims=True))
            probs = e / e.sum(axis=-1, keepdims=True)
            return float((probs * weights).sum())

        analytic = analytic_grad(lambda t: (F.softmax(t, axis=-1) * Tensor(weights)).sum(), x)
        numeric = numerical_grad(loss_np, x.copy())
        np.testing.assert_allclose(analytic, numeric, rtol=1e-2, atol=1e-2)

    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 3.0]], dtype=np.float32), requires_grad=True)
        labels = np.array([0, 1])
        loss = F.cross_entropy(logits, labels)
        manual = -np.mean(
            [np.log(np.exp(2) / (np.exp(2) + 1)), np.log(np.exp(3) / (np.exp(3) + 1))]
        )
        assert loss.data == pytest.approx(manual, rel=1e-4)
        loss.backward()
        assert logits.grad.shape == (2, 2)

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(np.zeros((3, 2), dtype=np.float32), requires_grad=True)
        labels = np.array([0, -100, 1])
        loss = F.cross_entropy(logits, labels, ignore_index=-100)
        assert loss.data == pytest.approx(np.log(2), rel=1e-4)

    def test_cross_entropy_class_weights_shift_loss(self):
        logits = Tensor(np.zeros((2, 2), dtype=np.float32))
        labels = np.array([0, 1])
        unweighted = F.cross_entropy(logits, labels)
        weighted = F.cross_entropy(logits, labels, class_weights=np.array([1.0, 9.0]))
        # Both are log(2) since logits are uniform, but the weighting path must not crash
        assert unweighted.data == pytest.approx(weighted.data, rel=1e-5)

    def test_layer_norm_output_statistics(self):
        x = Tensor(np.random.default_rng(10).normal(2.0, 3.0, size=(6, 16)).astype(np.float32))
        weight = Tensor(np.ones(16, dtype=np.float32), requires_grad=True)
        bias = Tensor(np.zeros(16, dtype=np.float32), requires_grad=True)
        out = F.layer_norm(x, weight, bias).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(6), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(6), atol=1e-2)

    def test_layer_norm_gradient_finite_difference(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=(2, 5))
        w = np.ones(5, dtype=np.float32)
        b = np.zeros(5, dtype=np.float32)

        def loss_np(arr):
            mu = arr.mean(axis=-1, keepdims=True)
            var = arr.var(axis=-1, keepdims=True)
            normalized = (arr - mu) / np.sqrt(var + 1e-5)
            return float((normalized * np.arange(5)).sum())

        coeff = Tensor(np.arange(5, dtype=np.float32))
        analytic = analytic_grad(
            lambda t: (F.layer_norm(t, Tensor(w), Tensor(b)) * coeff).sum(), x
        )
        numeric = numerical_grad(loss_np, x.copy())
        np.testing.assert_allclose(analytic, numeric, rtol=5e-2, atol=5e-2)

    def test_dropout_scaling_and_eval_passthrough(self):
        rng = np.random.default_rng(12)
        x = Tensor(np.ones((1000,), dtype=np.float32))
        dropped = F.dropout(x, 0.5, rng, training=True).data
        assert dropped.mean() == pytest.approx(1.0, abs=0.15)
        passthrough = F.dropout(x, 0.5, rng, training=False)
        assert passthrough is x

    def test_one_hot_validates_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([0, 3]), num_classes=2)

    def test_mse_and_bce(self):
        pred = Tensor(np.array([0.0, 2.0], dtype=np.float32), requires_grad=True)
        assert F.mse_loss(pred, np.array([0.0, 0.0])).data == pytest.approx(2.0)
        logits = Tensor(np.array([0.0], dtype=np.float32), requires_grad=True)
        assert F.binary_cross_entropy_with_logits(logits, np.array([1.0])).data == pytest.approx(
            np.log(2), rel=1e-4
        )


class TestGraphMechanics:
    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad
        with pytest.raises(RuntimeError):
            y.backward()

    def test_backward_requires_scalar_or_grad(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_gradient_accumulates_across_branches(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        y = (x * 2).sum() + (x * 3).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, 5 * np.ones(3))

    def test_detach_stops_gradient(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        y = (x.detach() * 2).sum() + x.sum()
        y.backward()
        np.testing.assert_allclose(x.grad, np.ones(3))

    def test_item_and_len(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4
        with pytest.raises(ValueError):
            Tensor(np.zeros(3)).item()
