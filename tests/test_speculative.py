"""Tests for speculative decoding (`repro.serving.speculative`).

Pins the properties the draft-then-verify loop must hold:

* greedy token identity — speculative output equals plain cached decode
  (and the uncached reference) for every KV layout (dense, paged fp32,
  paged int8) and every tested ``draft_k``, regardless of drafter quality;
* accept-rate extremes — an adversarial drafter (argmax-negated target)
  is never accepted yet changes nothing but throughput, while a drafter
  identical to the target is always accepted;
* rollback correctness — rows rolling back mid-batch (stop tokens, ragged
  budgets, fresh admissions mid-flight) leave their batchmates intact;
* engine integration — both engines decode staggered arrivals token-
  identically with a drafter, accept-rate statistics are sane, and the SLA
  identity queue + prefill + decode == wall survives multi-token steps;
* lossless sampling — at temperature > 0 the emitted distribution matches
  the plain sampler's (rejection sampling, checked distributionally);
* construction guards — mismatched vocab/tokenizer raise at construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from parity import assert_generations_equal
from repro.models import DecoderLM, get_config
from repro.models.decoder import DecodeBatch, DecodeState
from repro.serving import ContinuousBatchingEngine, SpeculativeDecoder

VOCAB = 64
STOP_IDS = {3, 5, 7}

KV_CONFIGS = [("dense", "fp32"), ("paged", "fp32"), ("paged", "int8")]


@pytest.fixture(scope="module")
def target():
    m = DecoderLM(get_config("mistral-7b"), VOCAB, rng=0)
    m.eval()
    return m


@pytest.fixture(scope="module")
def drafter():
    m = DecoderLM(get_config("gpt2"), VOCAB, rng=1)
    m.eval()
    return m


@pytest.fixture()
def ragged_prompts():
    rng = np.random.default_rng(17)
    return [rng.integers(1, VOCAB, size=n) for n in (4, 11, 6, 9, 5, 13)]


class _AdversarialDrafter:
    """Negates the target's logits: its argmax is the target's argmin, so
    greedy verification rejects every proposal — the worst possible
    drafter that still speaks the same vocabulary."""

    def __init__(self, inner: DecoderLM) -> None:
        self._inner = inner
        self.config = inner.config
        self.vocab_size = inner.vocab_size

    def make_cache(self, batch_size: int = 1, capacity: int | None = None):
        return self._inner.make_cache(batch_size, capacity)

    def make_paged_cache(self, *args, **kwargs):
        return self._inner.make_paged_cache(*args, **kwargs)

    def forward_incremental(self, input_ids, cache, **kwargs):
        return -self._inner.forward_incremental(input_ids, cache, **kwargs)


# ---------------------------------------------------------------------- #
# greedy token identity
# ---------------------------------------------------------------------- #
class TestGreedyIdentity:
    @pytest.mark.parametrize("kv_layout,kv_dtype", KV_CONFIGS)
    @pytest.mark.parametrize("draft_k", [1, 2, 4, 8])
    def test_matches_plain_cached_and_uncached(
        self, target, drafter, ragged_prompts, kv_layout, kv_dtype, draft_k
    ):
        spec = SpeculativeDecoder(target, drafter, draft_k=draft_k)
        outputs = spec.generate_batch(
            ragged_prompts,
            12,
            stop_ids=STOP_IDS,
            kv_layout=kv_layout,
            kv_dtype=kv_dtype,
        )
        # The identity guarantee is against plain cached decode under the
        # *same* KV config — int8 quantisation may legitimately diverge
        # from the dense fp32 trace, but speculation must never add to it.
        cached = target.generate_batch(
            ragged_prompts, 12, stop_ids=STOP_IDS, kv_layout=kv_layout, kv_dtype=kv_dtype
        )
        assert_generations_equal(
            outputs, cached, context=f"speculative {kv_layout}/{kv_dtype} k={draft_k}"
        )
        if kv_dtype == "fp32":
            uncached = [
                target.generate(p, 12, stop_ids=STOP_IDS, use_cache=False)
                for p in ragged_prompts
            ]
            assert_generations_equal(
                outputs, uncached, context="speculative vs uncached"
            )
        assert spec.drafted > 0
        assert 0.0 <= spec.accept_rate <= 1.0

    def test_single_prompt_generate_matches(self, target, drafter, ragged_prompts):
        spec = SpeculativeDecoder(target, drafter, draft_k=4)
        for prompt in ragged_prompts[:3]:
            out = spec.generate(prompt, 10, stop_ids=STOP_IDS)
            ref = target.generate(prompt, 10, stop_ids=STOP_IDS)
            assert_generations_equal([out], [ref], context="single-prompt")


# ---------------------------------------------------------------------- #
# accept-rate extremes
# ---------------------------------------------------------------------- #
class TestAcceptRateExtremes:
    def test_adversarial_drafter_accepts_nothing_changes_nothing(
        self, target, ragged_prompts
    ):
        spec = SpeculativeDecoder(target, _AdversarialDrafter(target), draft_k=4)
        outputs = spec.generate_batch(ragged_prompts, 12, stop_ids=STOP_IDS)
        cached = target.generate_batch(ragged_prompts, 12, stop_ids=STOP_IDS)
        assert_generations_equal(outputs, cached, context="adversarial drafter")
        assert spec.drafted > 0
        assert spec.accepted == 0
        assert spec.accept_rate == 0.0

    def test_self_drafter_accepts_everything(self, target, ragged_prompts):
        # max_new_tokens divisible by draft_k + 1 and no stop ids: no step
        # ever truncates its emission, so every proposal is accepted.
        spec = SpeculativeDecoder(target, target, draft_k=4)
        outputs = spec.generate_batch(ragged_prompts, 10)
        cached = target.generate_batch(ragged_prompts, 10)
        assert_generations_equal(outputs, cached, context="self drafter")
        assert spec.drafted > 0
        assert spec.accepted == spec.drafted
        assert spec.accept_rate == 1.0
        # 10 tokens per row in ceil(10 / 5) = 2 verify steps.
        assert spec.steps == 2

    def test_per_state_counters_sum_to_decoder_totals(self, target, ragged_prompts):
        spec = SpeculativeDecoder(target, target, draft_k=2)
        batch = DecodeBatch(target, capacity=32)
        states = [
            DecodeState(prompt_ids=p, max_new_tokens=6) for p in ragged_prompts[:3]
        ]
        batch.admit_many(states)
        while batch.num_rows:
            spec.step(batch)
        assert sum(st.spec_drafted for st in states) == spec.drafted
        assert sum(st.spec_accepted for st in states) == spec.accepted


# ---------------------------------------------------------------------- #
# rollback / stepping-core integration
# ---------------------------------------------------------------------- #
class TestRollbackAndStepping:
    @pytest.mark.parametrize("kv_layout,kv_dtype", KV_CONFIGS)
    def test_mid_flight_admissions_roll_back_without_disturbing_rows(
        self, target, drafter, ragged_prompts, kv_layout, kv_dtype
    ):
        """Rows join a running speculative batch between steps: newcomers
        are normalised into the speculative invariant while their
        batchmates are mid-stream, and every output still matches the
        sequential reference."""
        spec = SpeculativeDecoder(target, drafter, draft_k=3)
        batch = DecodeBatch(target, capacity=32, kv_layout=kv_layout, kv_dtype=kv_dtype)
        states = [
            DecodeState(prompt_ids=p, max_new_tokens=10, stop_ids=frozenset(STOP_IDS))
            for p in ragged_prompts
        ]
        batch.admit_many(states[:2])
        spec.step(batch, None)
        for st in states[2:4]:
            batch.admit(st)
        spec.step(batch, None)
        for st in states[4:]:
            batch.admit(st)
        while batch.num_rows:
            spec.step(batch, None)
        reference = target.generate_batch(
            ragged_prompts, 10, stop_ids=STOP_IDS, kv_layout=kv_layout, kv_dtype=kv_dtype
        )
        assert_generations_equal(
            [st.output() for st in states],
            reference,
            context=f"mid-flight admissions {kv_layout}/{kv_dtype}",
        )

    def test_emission_truncates_at_stop_token_mid_burst(self, target, ragged_prompts):
        """A stop token accepted mid-burst ends the request exactly there —
        the tokens behind it in the same verified burst are discarded."""
        spec = SpeculativeDecoder(target, target, draft_k=4)
        outputs = spec.generate_batch(ragged_prompts, 12, stop_ids=STOP_IDS)
        for out, prompt in zip(outputs, ragged_prompts):
            generated = out[len(prompt) :]
            hits = [i for i, t in enumerate(generated) if int(t) in STOP_IDS]
            if hits:
                assert hits[0] == len(generated) - 1  # stop token is last
        # The self drafter accepts every proposal, so without per-token
        # checks a 12-token budget would overshoot on 5-token bursts.
        assert all(len(o) - len(p) <= 12 for o, p in zip(outputs, ragged_prompts))

    def test_plain_step_rejects_mid_speculative_rows(self, target, drafter):
        spec = SpeculativeDecoder(target, drafter, draft_k=2)
        batch = DecodeBatch(target, capacity=32)
        state = DecodeState(prompt_ids=np.array([4, 9, 2]), max_new_tokens=8)
        batch.admit(state)
        spec.step(batch, None)
        assert state.next_log_probs is None  # speculative invariant
        with pytest.raises(RuntimeError, match="SpeculativeDecoder"):
            batch.step()

    def test_single_token_prompt_normalises_to_empty_row(self, target, drafter):
        """Normalising a 1-token prompt empties its cache row (width 0) —
        the verify forward rebuilds it from the pending token alone."""
        spec = SpeculativeDecoder(target, drafter, draft_k=2)
        out = spec.generate(np.array([7]), 6)
        ref = target.generate(np.array([7]), 6)
        assert_generations_equal([out], [ref], context="1-token prompt")


# ---------------------------------------------------------------------- #
# engine integration
# ---------------------------------------------------------------------- #
class TestEngineIntegration:
    def _run_engine(self, model, prompts, **engine_kwargs):
        engine = ContinuousBatchingEngine(
            model, max_batch_rows=4, min_admit_rows=2, **engine_kwargs
        )
        results = [None] * len(prompts)
        requests = []
        submitted = 0
        while submitted < len(prompts) or engine.has_work:
            for _ in range(2):
                if submitted < len(prompts):
                    requests.append(
                        engine.submit(
                            prompts[submitted], max_new_tokens=12, stop_ids=STOP_IDS
                        )
                    )
                    submitted += 1
            for request in engine.step():
                results[request.request_id] = request.result
        return results, requests, engine

    @pytest.mark.parametrize("kv_layout,kv_dtype", KV_CONFIGS)
    def test_staggered_arrivals_match_plain_engine(
        self, target, drafter, ragged_prompts, kv_layout, kv_dtype
    ):
        plain, _, _ = self._run_engine(
            target, ragged_prompts, kv_layout=kv_layout, kv_dtype=kv_dtype
        )
        spec, requests, engine = self._run_engine(
            target,
            ragged_prompts,
            kv_layout=kv_layout,
            kv_dtype=kv_dtype,
            draft_model=drafter,
            draft_k=4,
        )
        assert_generations_equal(
            spec, plain, context=f"speculative engine {kv_layout}/{kv_dtype}"
        )
        stats = engine.stats
        assert stats.drafted_tokens > 0
        assert 0.0 <= stats.accept_rate <= 1.0
        summary = stats.sla_summary()
        assert summary["drafted_tokens"] == stats.drafted_tokens
        assert summary["accept_rate"] == stats.accept_rate
        # SLA identity: queue + prefill + decode == wall, even when one
        # engine iteration emits several tokens.
        for request in requests:
            assert request.done
            total = (
                request.queue_seconds
                + request.prefill_seconds
                + request.decode_seconds
            )
            assert abs(total - request.wall_seconds) < 1e-9
            assert request.decode_steps == request.state.gen_len

    def test_high_accept_rate_engine_takes_fewer_steps(self, target, ragged_prompts):
        _, _, plain_engine = self._run_engine(target, ragged_prompts)
        spec, _, engine = self._run_engine(
            target, ragged_prompts, draft_model=target, draft_k=4
        )
        assert engine.stats.accept_rate > 0.5
        assert engine.stats.steps < plain_engine.stats.steps
        # Per-request counters mirror the engine totals.
        assert (
            engine.stats.accepted_draft_tokens <= engine.stats.drafted_tokens
        )


# ---------------------------------------------------------------------- #
# lossless sampling (temperature > 0)
# ---------------------------------------------------------------------- #
class TestSampling:
    def test_self_drafter_accepts_all_when_sampling(self, target):
        """With q == p the acceptance probability is exactly 1: rejection
        sampling never rejects, so the accept rate is 1 even at
        temperature > 0."""
        spec = SpeculativeDecoder(target, target, draft_k=3)
        prompt = np.array([5, 9, 2])
        out = spec.generate(prompt, 8, temperature=0.7, rng=0)
        assert len(out) == len(prompt) + 8
        assert spec.accepted == spec.drafted > 0

    def test_sampled_distribution_matches_plain_sampler(self):
        """First-token distribution under speculative rejection sampling is
        statistically indistinguishable from the plain sampler's (total
        variation within plain-vs-plain resampling noise)."""
        vocab = 32
        small_target = DecoderLM(get_config("gpt2"), vocab, rng=0).eval()
        small_drafter = DecoderLM(get_config("gpt2"), vocab, rng=1).eval()
        prompt = np.array([5, 9, 2])
        n = 250
        plain_a = np.zeros(vocab)
        plain_b = np.zeros(vocab)
        spec_counts = np.zeros(vocab)
        for i in range(n):
            plain_a[small_target.generate(prompt, 1, temperature=1.0, rng=1000 + i)[-1]] += 1
            plain_b[small_target.generate(prompt, 1, temperature=1.0, rng=9000 + i)[-1]] += 1
            spec = SpeculativeDecoder(small_target, small_drafter, draft_k=2)
            spec_counts[spec.generate(prompt, 1, temperature=1.0, rng=5000 + i)[-1]] += 1
        tv_control = 0.5 * np.abs(plain_a - plain_b).sum() / n
        tv_spec = 0.5 * np.abs(plain_a - spec_counts).sum() / n
        assert tv_spec < tv_control + 0.1

    def test_requires_rng_for_sampling_rows(self, target, drafter):
        spec = SpeculativeDecoder(target, drafter, draft_k=2)
        batch = DecodeBatch(target, capacity=32)
        batch.admit(
            DecodeState(prompt_ids=np.array([4, 9]), max_new_tokens=4, temperature=0.8)
        )
        with pytest.raises(ValueError, match="rng"):
            spec.step(batch, None)


# ---------------------------------------------------------------------- #
# construction guards
# ---------------------------------------------------------------------- #
class TestConstructionGuards:
    def test_vocab_mismatch_raises(self, target):
        other = DecoderLM(get_config("gpt2"), VOCAB + 1, rng=2)
        with pytest.raises(ValueError, match="vocab"):
            SpeculativeDecoder(target, other)

    def test_tokenizer_mismatch_raises(self, target, drafter):
        with pytest.raises(ValueError, match="tokenizer"):
            SpeculativeDecoder(
                target, drafter, tokenizer=object(), draft_tokenizer=object()
            )
        # Shared tokenizer (the registry case) passes the guard.
        shared = object()
        SpeculativeDecoder(target, drafter, tokenizer=shared, draft_tokenizer=shared)

    def test_nonpositive_draft_k_raises(self, target, drafter):
        with pytest.raises(ValueError, match="draft_k"):
            SpeculativeDecoder(target, drafter, draft_k=0)

    def test_from_registry_shares_tokenizer(self, registry):
        spec = SpeculativeDecoder.from_registry(registry, "mistral-7b", "gpt2")
        assert spec.model.vocab_size == spec.draft_model.vocab_size
        assert spec.tokenizer is registry.tokenizer
        assert spec.draft_tokenizer is registry.tokenizer
