"""Tests for the batched serving layer.

Pins the serving-subsystem invariants:

* fused QKV projection == unfused reference, and legacy (separate q/k/v)
  checkpoints still load bit-exactly through the state-dict shim;
* batched left-padded ``generate_batch`` == per-prompt sequential
  ``generate`` == the uncached reference, across ragged prompt lengths, and
  greedy decoding is deterministic under batch reordering;
* the LRU :class:`~repro.serving.PrefixCachePool` counts hits/misses,
  bounds its capacity via eviction, and pooled scoring matches unpooled;
* the :class:`~repro.serving.BatchScheduler` — now a front door over the
  continuous-batching engine — returns results in submit order that match
  direct model calls, with admission groups bounded by ``max_batch_size``
  (engine-level invariants live in ``test_continuous_batching.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from parity import assert_generations_equal, assert_logits_close
from repro.models import DecoderLM, get_config
from repro.models.decoder import PrefixCachedScorer, left_pad_batch
from repro.serving import BatchScheduler, PrefixCachePool
from repro.tensor import Tensor, no_grad

VOCAB = 64


@pytest.fixture(scope="module")
def model():
    m = DecoderLM(get_config("gpt2"), VOCAB, rng=0)
    m.eval()
    return m


@pytest.fixture()
def ragged_prompts():
    rng = np.random.default_rng(11)
    return [rng.integers(1, VOCAB, size=n) for n in (3, 9, 5, 12, 7, 4, 10, 6)]


# ---------------------------------------------------------------------- #
# fused QKV
# ---------------------------------------------------------------------- #
class TestFusedQKV:
    def test_fused_projection_matches_unfused_reference(self, model):
        """One (3H, H) matmul == three separate (H, H) matmuls on the slices."""
        attention = model.decoder.layers[0].attention
        h = attention.hidden_size
        x = np.random.default_rng(0).normal(size=(2, 5, h)).astype(np.float32)
        with no_grad():
            fused = attention.qkv_proj(Tensor(x)).data
        w = attention.qkv_proj.weight.data
        b = attention.qkv_proj.bias.data
        for block, name in ((0, "q"), (1, "k"), (2, "v")):
            ref = x @ w[block * h : (block + 1) * h].T + b[block * h : (block + 1) * h]
            assert_logits_close(
                fused[:, :, block * h : (block + 1) * h], ref, context=f"{name} projection"
            )

    def test_legacy_checkpoint_layout_loads_bit_exact(self, model, ragged_prompts):
        """A pre-fusion state dict (separate q/k/v keys) loads via the shim."""
        state = model.state_dict()
        legacy = {}
        for key, value in state.items():
            if ".qkv_proj." in key:
                h = value.shape[0] // 3
                base, kind = key.rsplit("qkv_proj.", 1)
                legacy[f"{base}q_proj.{kind}"] = value[:h]
                legacy[f"{base}k_proj.{kind}"] = value[h : 2 * h]
                legacy[f"{base}v_proj.{kind}"] = value[2 * h :]
            else:
                legacy[key] = value
        other = DecoderLM(get_config("gpt2"), VOCAB, rng=99)
        other.eval()
        other.load_state_dict(legacy)
        ids = ragged_prompts[1][None, :]
        with no_grad():
            assert_logits_close(other(ids), model(ids), context="legacy checkpoint load")

    def test_seeded_weights_unchanged_by_fusion(self, model):
        """The fused rows draw from the historical q/k/v rng streams."""
        from repro.nn.attention import MultiHeadAttention
        from repro.utils.rng import new_rng, spawn_rngs
        from repro.nn.layers import Linear

        attn = MultiHeadAttention(32, 4, dropout=0.0, causal=True, rng=1234)
        rngs = spawn_rngs(new_rng(1234), 5)
        q, k, v = (Linear(32, 32, rng=rngs[i]) for i in range(3))
        np.testing.assert_array_equal(attn.qkv_proj.weight.data[:32], q.weight.data)
        np.testing.assert_array_equal(attn.qkv_proj.weight.data[32:64], k.weight.data)
        np.testing.assert_array_equal(attn.qkv_proj.weight.data[64:], v.weight.data)
        np.testing.assert_array_equal(attn.qkv_proj.bias.data[:32], q.bias.data)


# ---------------------------------------------------------------------- #
# batched generation
# ---------------------------------------------------------------------- #
class TestGenerateBatch:
    def test_batched_matches_sequential_and_uncached(self, model, ragged_prompts):
        batched = model.generate_batch(ragged_prompts, max_new_tokens=10)
        sequential = [
            model.generate(p, max_new_tokens=10, use_cache=True) for p in ragged_prompts
        ]
        uncached = [
            model.generate(p, max_new_tokens=10, use_cache=False) for p in ragged_prompts
        ]
        assert_generations_equal(batched, sequential, context="batched vs sequential")
        assert_generations_equal(batched, uncached, context="batched vs uncached")

    def test_leftpad_prefill_logits_match_unpadded(self, model, ragged_prompts):
        """Per-row last-token logits of the padded prefill == per-prompt forward."""
        ids, mask, positions, lengths = left_pad_batch(ragged_prompts)
        max_len = int(lengths.max())
        batch = len(ragged_prompts)
        with no_grad():
            cache = model.make_cache(batch, max_len)
            padded = model.forward_incremental(
                ids, cache, attention_mask=mask, positions=positions
            ).data
            for i, p in enumerate(ragged_prompts):
                ref = model.forward(p[None, :]).data[0, -1]
                assert_logits_close(padded[i, -1], ref, context=f"row {i} (len {len(p)})")

    def test_greedy_deterministic_under_batch_reordering(self, model, ragged_prompts):
        order = [3, 0, 7, 5, 1, 6, 2, 4]
        base = model.generate_batch(ragged_prompts, max_new_tokens=8)
        shuffled = model.generate_batch(
            [ragged_prompts[i] for i in order], max_new_tokens=8
        )
        assert_generations_equal(
            shuffled, [base[i] for i in order], context="batch reordering"
        )

    def test_per_row_stop_tokens(self, model, ragged_prompts):
        greedy_first = int(np.argmax(model.next_token_log_probs(ragged_prompts[0])))
        outs = model.generate_batch(
            ragged_prompts[:3], max_new_tokens=8, stop_ids={greedy_first}
        )
        expected = [
            model.generate(p, max_new_tokens=8, stop_ids={greedy_first})
            for p in ragged_prompts[:3]
        ]
        assert_generations_equal(outs, expected, context="per-row stop")
        # Row 0 stops immediately on its greedy first token; rows stop independently.
        assert len(outs[0]) == len(ragged_prompts[0]) + 1
        assert outs[0][-1] == greedy_first

    def test_sampling_batch_shapes_and_bounds(self, model, ragged_prompts):
        outs = model.generate_batch(
            ragged_prompts[:4], max_new_tokens=6, temperature=0.7, rng=3
        )
        for prompt, out in zip(ragged_prompts[:4], outs):
            np.testing.assert_array_equal(out[: len(prompt)], prompt)
            assert len(prompt) < len(out) <= len(prompt) + 6
            assert out.min() >= 0 and out.max() < VOCAB

    def test_edge_cases(self, model):
        assert model.generate_batch([]) == []
        prompt = np.array([1, 2, 3])
        outs = model.generate_batch([prompt], max_new_tokens=0)
        assert_generations_equal(outs, [prompt], context="zero new tokens")
        with pytest.raises(ValueError):
            model.generate_batch([np.empty(0, dtype=np.int64)])
        too_long = np.zeros(model.config.max_position + 1, dtype=np.int64)
        with pytest.raises(ValueError):
            model.generate_batch([too_long])

    def test_context_limit_does_not_leak_across_rows(self, model):
        """A near-limit row must not truncate its batchmates' generations.

        The padded batch hits the context window long before the short row
        individually would; the short row's greedy output must still match
        what it gets decoded alone.
        """
        rng = np.random.default_rng(7)
        max_pos = model.config.max_position
        long_prompt = rng.integers(1, VOCAB, size=max_pos - 4)
        short_prompt = rng.integers(1, VOCAB, size=6)
        batched = model.generate_batch([long_prompt, short_prompt], max_new_tokens=12)
        expected = [
            model.generate(long_prompt, max_new_tokens=12),
            model.generate(short_prompt, max_new_tokens=12),
        ]
        assert_generations_equal(batched, expected, context="context-limit batch")


# ---------------------------------------------------------------------- #
# prefix-cache pool
# ---------------------------------------------------------------------- #
class TestPrefixCachePool:
    def test_hit_miss_and_token_reuse_accounting(self, model):
        pool = PrefixCachePool(model, max_entries=4)
        prompt = np.arange(1, 21, dtype=np.int64)
        cache, reused = pool.checkout(prompt)
        assert reused == 0 and pool.stats.misses == 1
        with no_grad():
            model.forward_incremental(prompt[None, :], cache)
        pool.checkin(prompt, cache)
        assert len(pool) == 1

        # A prompt sharing the first 12 tokens reuses exactly those positions.
        overlapping = np.concatenate([prompt[:12], np.array([40, 41, 42])])
        cache2, reused2 = pool.checkout(overlapping)
        assert reused2 == 12 and pool.stats.hits == 1
        assert cache2.length == 12
        assert pool.stats.tokens_reused == 12
        # Partial overlap hands out a *copy*: the 20-token entry survives for
        # its own prompt family and keeps its full prefill.
        assert len(pool) == 1
        cache3, reused3 = pool.checkout(prompt)
        assert reused3 == 20
        # Full coverage consumes the entry (the caller owns it exclusively).
        assert len(pool) == 0

    def test_lru_eviction_bounds_capacity(self, model):
        pool = PrefixCachePool(model, max_entries=2)
        prompts = [np.full(5, fill, dtype=np.int64) for fill in (1, 2, 3)]
        for p in prompts:
            cache, _ = pool.checkout(p)
            with no_grad():
                model.forward_incremental(p[None, :], cache)
            pool.checkin(p, cache)
        assert len(pool) == 2
        assert pool.stats.evictions == 1
        # The oldest entry (fill=1) was evicted; a re-checkout misses.
        _, reused = pool.checkout(prompts[0])
        assert reused == 0

    def test_lru_recency_protects_hot_entries(self, model):
        pool = PrefixCachePool(model, max_entries=2)
        a, b, c = (np.full(10, fill, dtype=np.int64) for fill in (7, 8, 9))
        for p in (a, b):
            cache, _ = pool.checkout(p)
            with no_grad():
                model.forward_incremental(p[None, :], cache)
            pool.checkin(p, cache)
        # Touch `a` so `b` becomes least recently used, then insert `c`.
        cache, reused = pool.checkout(a)
        assert reused == 10
        pool.checkin(a, cache)
        cache, _ = pool.checkout(c)
        with no_grad():
            model.forward_incremental(c[None, :], cache)
        pool.checkin(c, cache)
        _, reused_a = pool.checkout(a)
        assert reused_a == 10  # survived
        _, reused_b = pool.checkout(b)
        assert reused_b == 0  # evicted

    def test_tiny_overlap_does_not_steal_entries(self, model):
        """A BOS-only overlap must not check out (and wipe) another family.

        Every causal prompt shares at least the BOS token, so without the
        ``min_reuse_tokens`` floor two interleaved prompt families would
        keep truncating each other's prefills to one token.
        """
        pool = PrefixCachePool(model, max_entries=4, min_reuse_tokens=8)
        family_a = np.concatenate([[1], np.full(19, 5, dtype=np.int64)])
        family_b = np.concatenate([[1], np.full(19, 9, dtype=np.int64)])
        for prompt in (family_a, family_b):
            cache, reused = pool.checkout(prompt)
            assert reused == 0  # 1-token overlap is below the floor
            with no_grad():
                model.forward_incremental(prompt[None, :], cache)
            pool.checkin(prompt, cache)
        assert len(pool) == 2  # neither family displaced the other
        _, reused_a = pool.checkout(family_a)
        assert reused_a == 20  # full reuse on the exact match

    def test_checkin_validation_and_clear(self, model):
        pool = PrefixCachePool(model, max_entries=2)
        cache, _ = pool.checkout(np.arange(5))
        with no_grad():
            model.forward_incremental(np.arange(5)[None, :], cache)
        with pytest.raises(ValueError):
            pool.checkin(np.arange(3), cache)  # cache longer than prompt
        pool.checkin(np.arange(5), cache)
        assert len(pool) == 1
        pool.clear()
        assert len(pool) == 0
        with pytest.raises(ValueError):
            PrefixCachePool(model, max_entries=0)
        with pytest.raises(ValueError):
            PrefixCachePool(model, min_reuse_tokens=0)

    def test_shared_pool_is_per_model_singleton(self, model):
        assert PrefixCachePool.shared(model) is PrefixCachePool.shared(model)
        other = DecoderLM(get_config("gpt2"), VOCAB, rng=5)
        assert PrefixCachePool.shared(other) is not PrefixCachePool.shared(model)

    def test_pooled_scoring_matches_unpooled(self, model, ragged_prompts):
        pool = PrefixCachePool(model, max_entries=4)
        pooled = PrefixCachedScorer(model, pool=pool)
        candidates = [np.array([3]), np.array([4, 5])]
        shared_head = np.arange(1, 9, dtype=np.int64)
        prompts = [
            np.concatenate([shared_head, p]) for p in ragged_prompts[:4]
        ]
        for prompt in prompts:
            expected = model.score_continuations(prompt, candidates)
            got = pooled.score_continuations(prompt, candidates)
            assert_logits_close(got, expected, context="pooled scorer")
        # Later prompts found the shared head in the pool.
        assert pool.stats.hits >= len(prompts) - 1


# ---------------------------------------------------------------------- #
# batch scheduler
# ---------------------------------------------------------------------- #
class TestBatchScheduler:
    def test_results_in_submit_order_and_match_direct_calls(self, model, ragged_prompts):
        scheduler = BatchScheduler(
            model, max_batch_size=4, cache_pool=PrefixCachePool(model, max_entries=4)
        )
        gen_requests = [
            scheduler.submit_generate(p, max_new_tokens=6) for p in ragged_prompts[:5]
        ]
        candidates = [np.array([3]), np.array([4, 5])]
        score_request = scheduler.submit_score(ragged_prompts[0], candidates)
        assert scheduler.pending == 6

        done = scheduler.flush()
        assert scheduler.pending == 0
        assert [r.request_id for r in done] == list(range(6))
        assert all(r.done for r in done)

        expected = [model.generate(p, max_new_tokens=6) for p in ragged_prompts[:5]]
        assert_generations_equal(
            [r.result for r in gen_requests], expected, context="scheduler generate"
        )
        assert_logits_close(
            score_request.result,
            model.score_continuations(ragged_prompts[0], candidates),
            context="scheduler score",
        )

    def test_admission_groups_respect_max_batch_size_and_refill(self, model, ragged_prompts):
        """Mixed decode parameters share one live batch; slots refill on retirement.

        Six requests against three rows: the engine admits 3, decodes them to
        completion (mnt=4), then refills all three freed slots in one second
        admission group — the mnt=9 request no longer needs a private batch.
        """
        scheduler = BatchScheduler(
            model, max_batch_size=3, cache_pool=PrefixCachePool(model, max_entries=4)
        )
        requests = [
            scheduler.submit_generate(p, max_new_tokens=4) for p in ragged_prompts[:5]
        ]
        requests.append(scheduler.submit_generate(ragged_prompts[5], max_new_tokens=9))
        scheduler.flush()
        assert scheduler.stats.generate_batches == 2  # two admission groups
        assert scheduler.stats.batch_sizes == [3, 3]
        assert scheduler.stats.largest_batch == 3
        # 4 steps for the first wave, then the refilled wave runs 9 more
        # (its two mnt=4 rows retire mid-wave) — not 4 + 4 + 9 serial.
        assert scheduler.engine.stats.steps == 13
        expected = [
            model.generate(p, max_new_tokens=4) for p in ragged_prompts[:5]
        ] + [model.generate(ragged_prompts[5], max_new_tokens=9)]
        assert_generations_equal(
            [r.result for r in requests], expected, context="mixed-budget flush"
        )

    def test_flush_empty_and_validation(self, model):
        scheduler = BatchScheduler(model)
        assert scheduler.flush() == []
        with pytest.raises(ValueError):
            scheduler.submit_generate(np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            scheduler.submit_score(np.empty(0, dtype=np.int64), [np.array([1])])
        with pytest.raises(ValueError):
            BatchScheduler(model, max_batch_size=0)

    def test_failed_request_does_not_strand_the_rest(self, model):
        """A request that errors mid-flush is reported, not silently dropped."""
        scheduler = BatchScheduler(
            model, cache_pool=PrefixCachePool(model, max_entries=2)
        )
        # Prompt + candidate exceed the context window: scoring raises.
        bad = scheduler.submit_score(
            np.ones(model.config.max_position, dtype=np.int64), [np.array([1, 2])]
        )
        good = scheduler.submit_score(np.array([1, 2, 3]), [np.array([4])])
        done = scheduler.flush()
        assert len(done) == 2 and scheduler.pending == 0
        assert bad.done and bad.result is None and bad.error
        assert good.done and good.error is None
        assert_logits_close(
            good.result,
            model.score_continuations(np.array([1, 2, 3]), [np.array([4])]),
            context="request after failed one",
        )
