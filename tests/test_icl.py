"""Tests for prompts, few-shot selection, the ICL engine, CoT and LoRA fine-tuning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.icl import (
    CATEGORY_ABNORMAL,
    CATEGORY_NORMAL,
    ChainOfThoughtExplainer,
    FewShotSelector,
    ICLEngine,
    ICLFineTuneConfig,
    ICLFineTuner,
    PromptTemplate,
    build_prompt,
    build_task_description,
    format_example,
)
from repro.tokenization.templates import JobRecord


@pytest.fixture(scope="module")
def decoder_engine(registry):
    model = registry.load_decoder("gpt2")
    return ICLEngine(model, registry.tokenizer)


def record(label=0, runtime=100.0):
    return JobRecord(
        features={"wms_delay": 5.0, "queue_delay": 20.0, "runtime": runtime, "cpu_time": runtime * 0.9},
        label=label,
    )


class TestPrompts:
    def test_task_description_contains_categories_and_features(self):
        text = build_task_description(("runtime", "cpu_time"))
        assert CATEGORY_NORMAL in text and CATEGORY_ABNORMAL in text
        assert "runtime, cpu_time" in text
        assert "only respond with the category" in text.lower()

    def test_cot_variant_drops_category_only_constraint(self):
        text = build_task_description(("runtime",), ask_category_only=False)
        assert "only respond" not in text.lower()

    def test_format_example_with_and_without_category(self):
        example = format_example(record(label=1))
        assert example.startswith("Instruct: ") and example.endswith("Category: Abnormal")
        query = format_example(record(), with_category=False)
        assert query.endswith("Category:")

    def test_format_example_requires_label(self):
        with pytest.raises(ValueError):
            format_example("runtime is 5.0", with_category=True)

    def test_full_prompt_structure(self):
        prompt = build_prompt(record(), examples=[(record(0), 0), (record(1), 1)])
        assert prompt.count("Instruct:") == 3
        assert prompt.count("Category: Normal") == 1
        assert prompt.count("Category: Abnormal") == 1
        assert prompt.rstrip().endswith("Category:")

    def test_cot_prompt_appends_instruction(self):
        prompt = build_prompt(record(), chain_of_thought=True)
        assert prompt.endswith("Please think about it step by step.")

    def test_compact_template_omits_task_description(self):
        compact = PromptTemplate(include_task_description=False).build(record())
        assert "system administration bot" not in compact
        full = PromptTemplate().build(record())
        assert "system administration bot" in full


class TestFewShotSelector:
    def make_pool(self):
        return [record(label=i % 2, runtime=100.0 + i) for i in range(20)]

    def test_modes_return_requested_composition(self):
        pool = self.make_pool()
        assert all(lab == 0 for _, lab in FewShotSelector(pool, mode="neg", seed=0).select(6))
        assert all(lab == 1 for _, lab in FewShotSelector(pool, mode="pos", seed=0).select(6))
        mixed = FewShotSelector(pool, mode="mixed", seed=0).select(6)
        labels = [lab for _, lab in mixed]
        assert labels.count(0) == 3 and labels.count(1) == 3

    def test_zero_and_negative_k(self):
        selector = FewShotSelector(self.make_pool(), seed=0)
        assert selector.select(0) == []
        with pytest.raises(ValueError):
            selector.select(-1)

    def test_invalid_mode_and_empty_classes(self):
        with pytest.raises(ValueError):
            FewShotSelector(self.make_pool(), mode="other")
        with pytest.raises(ValueError):
            FewShotSelector([record(label=0)], mode="pos")

    def test_class_counts(self):
        selector = FewShotSelector(self.make_pool(), seed=0)
        assert selector.class_counts() == {"normal": 10, "anomalous": 10}
        assert selector.pool_size == 20


class TestICLEngine:
    def test_prediction_fields_and_score_range(self, decoder_engine):
        prediction = decoder_engine.classify(record())
        assert prediction.label in (0, 1)
        assert prediction.category in (CATEGORY_NORMAL, CATEGORY_ABNORMAL)
        assert 0.0 <= prediction.anomaly_score <= 1.0

    def test_label_consistent_with_log_probs(self, decoder_engine):
        prediction = decoder_engine.classify(record())
        expected = int(prediction.log_prob_abnormal > prediction.log_prob_normal)
        assert prediction.label == expected

    def test_batch_and_evaluate(self, decoder_engine, small_dataset):
        test = small_dataset.test.subsample(12, rng=0)
        predictions = decoder_engine.classify_batch(test.records)
        assert len(predictions) == 12
        report = decoder_engine.evaluate(test.records, test.labels())
        assert 0.0 <= report.accuracy <= 1.0

    def test_fewshot_prompting_runs(self, decoder_engine, small_dataset):
        selector = FewShotSelector(small_dataset.train.records[:100], mode="mixed", seed=0)
        test = small_dataset.test.subsample(6, rng=1)
        report = decoder_engine.evaluate(
            test.records, test.labels(), selector=selector, num_examples=4
        )
        assert 0.0 <= report.accuracy <= 1.0

    def test_anomaly_scores_vector(self, decoder_engine, small_dataset):
        test = small_dataset.test.subsample(8, rng=2)
        scores = decoder_engine.anomaly_scores(test.records)
        assert scores.shape == (8,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_long_prompt_is_truncated_not_crashed(self, decoder_engine, small_dataset):
        selector = FewShotSelector(small_dataset.train.records[:200], mode="mixed", seed=0)
        examples = selector.select(30)  # far beyond the context window
        prediction = decoder_engine.classify(small_dataset.test.records[0], examples)
        assert prediction.label in (0, 1)


class TestICLFineTuning:
    def test_finetune_improves_over_raw_prompting(self, registry, small_dataset):
        """Table III / Table IV claim: fine-tuned ICL beats raw prompting.

        Deterministic by construction (fixed model, data and tuner seeds; the
        registry derives per-model seeds with a stable digest) and asserted
        with *margins* rather than knife-edge thresholds: the fine-tuned
        model must clear both raw prompting and the majority-class baseline
        by a margin, and must not have collapsed to a single category (the
        historical failure mode on class-imbalanced training data, addressed
        by ``balance_classes``).
        """
        model = registry.load_decoder("gpt2")
        engine = ICLEngine(model, registry.tokenizer)
        test = small_dataset.test.subsample(60, rng=3)
        labels = test.labels()
        before = engine.evaluate(test.records, labels, num_examples=0)
        tuner = ICLFineTuner(
            model,
            registry.tokenizer,
            ICLFineTuneConfig(
                epochs=12,
                batch_size=16,
                quantization_bits=None,
                seed=1,
                balance_classes=True,
            ),
        )
        result = tuner.finetune_split(small_dataset.train, max_records=700)
        after = engine.evaluate(test.records, labels, num_examples=0)
        # A collapsed model plateaus at the balanced two-class loss floor
        # ln(2) ≈ 0.693; genuine learning ends well below it.
        assert result.losses[-1] < result.losses[0]
        assert result.losses[-1] < 0.5
        majority = float(np.bincount(labels).max()) / len(labels)
        assert after.accuracy >= before.accuracy + 0.05
        assert after.accuracy >= majority + 0.1
        # Non-degenerate: the model actually predicts both categories.
        assert after.precision > 0.0 and after.recall > 0.0

    def test_parameter_summary_reports_reduction(self, registry):
        model = registry.load_decoder("gpt2")
        tuner = ICLFineTuner(
            model,
            registry.tokenizer,
            ICLFineTuneConfig(train_token_embedding=False, quantization_bits=None),
        )
        summary = tuner.prepare()
        assert summary.trainable_fraction < 0.5
        # idempotent
        assert tuner.prepare() is summary

    def test_requires_labeled_records(self, registry):
        model = registry.load_decoder("gpt2")
        tuner = ICLFineTuner(model, registry.tokenizer)
        with pytest.raises(ValueError):
            tuner.finetune([JobRecord(features={"runtime": 1.0}, label=None)])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ICLFineTuneConfig(epochs=0)
        with pytest.raises(ValueError):
            ICLFineTuneConfig(lora_rank=0)


class TestChainOfThought:
    def test_explanation_structure(self, decoder_engine, small_dataset):
        explainer = ChainOfThoughtExplainer(decoder_engine, small_dataset.train.records[:300])
        query = next(r for r in small_dataset.test.records if r.label == 1)
        result = explainer.explain(query)
        assert len(result.steps) >= 3
        text = result.text()
        assert text.startswith("Sure, here's the step-by-step reasoning:")
        assert "Therefore, the category is likely" in text
        assert result.category in (CATEGORY_NORMAL, CATEGORY_ABNORMAL)
        assert "step by step" in result.prompt

    def test_statistic_vote_prefers_anomalous_for_extreme_job(self, decoder_engine, small_dataset):
        explainer = ChainOfThoughtExplainer(decoder_engine, small_dataset.train.records[:300])
        extreme = JobRecord(
            features={name: 10.0 for name in small_dataset.train.records[0].features},
            label=None,
        )
        extreme.features["stage_in_delay"] = 1e6
        extreme.features["runtime"] = 1e6
        result = explainer.explain(extreme)
        assert result.votes_abnormal + result.votes_normal > 0

    def test_requires_reference_records(self, decoder_engine):
        with pytest.raises(ValueError):
            ChainOfThoughtExplainer(decoder_engine, [])
        with pytest.raises(ValueError):
            ChainOfThoughtExplainer(decoder_engine, [record(label=0)])

    def test_class_mean_lookup(self, decoder_engine, small_dataset):
        explainer = ChainOfThoughtExplainer(decoder_engine, small_dataset.train.records[:300])
        assert explainer.class_mean(1, "runtime") > explainer.class_mean(0, "runtime") * 0.5
