"""Tests for the nn module system, layers, attention and transformer blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.transformer import SinusoidalPositionalEncoding
from repro.tensor import Tensor


class TestModuleSystem:
    def test_named_parameters_are_hierarchical(self):
        layer = nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
        names = [n for n, _ in layer.named_parameters()]
        assert "0.weight" in names and "2.bias" in names

    def test_num_parameters_counts(self):
        linear = nn.Linear(10, 5, rng=0)
        assert linear.num_parameters() == 10 * 5 + 5

    def test_state_dict_roundtrip(self):
        a = nn.Linear(6, 3, rng=0)
        b = nn.Linear(6, 3, rng=1)
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_shape_mismatch_raises(self):
        a = nn.Linear(6, 3, rng=0)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_load_state_dict_strict_missing_key(self):
        a = nn.Linear(6, 3, rng=0)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": a.weight.data})

    def test_freeze_unfreeze(self):
        model = nn.Sequential(nn.Linear(4, 4, rng=0), nn.Linear(4, 2, rng=1))
        frozen = model.freeze()
        assert frozen == 4
        assert all(not p.requires_grad for p in model.parameters())
        model.unfreeze(lambda name, p: name.startswith("1."))
        trainable = [n for n, p in model.named_parameters() if p.requires_grad]
        assert trainable == ["1.weight", "1.bias"]

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5, rng=0), nn.Linear(3, 3, rng=0))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_module_list(self):
        items = nn.ModuleList([nn.Linear(2, 2, rng=i) for i in range(3)])
        assert len(items) == 3
        assert isinstance(items[1], nn.Linear)
        with pytest.raises(RuntimeError):
            items(Tensor(np.zeros((1, 2), dtype=np.float32)))


class TestLayers:
    def test_linear_shapes_and_validation(self):
        layer = nn.Linear(5, 7, rng=0)
        out = layer(Tensor(np.zeros((3, 5), dtype=np.float32)))
        assert out.shape == (3, 7)
        with pytest.raises(ValueError):
            nn.Linear(0, 3)

    def test_linear_no_bias(self):
        layer = nn.Linear(5, 7, bias=False, rng=0)
        assert layer.bias is None
        assert layer.num_parameters() == 35

    def test_embedding_lookup_and_range_check(self):
        emb = nn.Embedding(10, 4, rng=0)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        with pytest.raises(IndexError):
            emb(np.array([10]))

    def test_embedding_padding_idx_zero(self):
        emb = nn.Embedding(10, 4, rng=0, padding_idx=0)
        np.testing.assert_allclose(emb.weight.data[0], np.zeros(4))

    def test_layernorm_learnable_affine(self):
        ln = nn.LayerNorm(8)
        out = ln(Tensor(np.random.default_rng(0).normal(size=(2, 8)).astype(np.float32)))
        assert out.shape == (2, 8)
        assert ln.num_parameters() == 16

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_activation_modules(self):
        x = Tensor(np.array([-1.0, 1.0], dtype=np.float32))
        assert nn.ReLU()(x).data.tolist() == [0.0, 1.0]
        assert nn.Tanh()(x).data[1] == pytest.approx(np.tanh(1.0), rel=1e-5)
        assert nn.GELU()(x).data[1] == pytest.approx(0.841, abs=0.01)


class TestAttention:
    def test_output_shape_and_mask_handling(self):
        attn = nn.MultiHeadAttention(hidden_size=16, num_heads=4, dropout=0.0, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)).astype(np.float32))
        mask = np.ones((2, 5), dtype=bool)
        mask[1, 3:] = False
        out = attn(x, mask)
        assert out.shape == (2, 5, 16)

    def test_invalid_head_count(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(hidden_size=10, num_heads=3)

    def test_wrong_mask_shape_raises(self):
        attn = nn.MultiHeadAttention(hidden_size=8, num_heads=2, rng=0)
        x = Tensor(np.zeros((1, 4, 8), dtype=np.float32))
        with pytest.raises(ValueError):
            attn(x, np.ones((2, 4), dtype=bool))

    def test_causal_attention_ignores_future_tokens(self):
        """Changing a future token must not change earlier positions' outputs."""
        attn = nn.MultiHeadAttention(hidden_size=8, num_heads=2, dropout=0.0, causal=True, rng=0)
        attn.eval()
        rng = np.random.default_rng(1)
        base = rng.normal(size=(1, 6, 8)).astype(np.float32)
        modified = base.copy()
        modified[0, 5, :] += 10.0
        out_base = attn(Tensor(base)).data
        out_mod = attn(Tensor(modified)).data
        np.testing.assert_allclose(out_base[0, :5], out_mod[0, :5], atol=1e-5)
        assert not np.allclose(out_base[0, 5], out_mod[0, 5])

    def test_padding_mask_blocks_information_flow(self):
        attn = nn.MultiHeadAttention(hidden_size=8, num_heads=2, dropout=0.0, rng=0)
        attn.eval()
        rng = np.random.default_rng(2)
        base = rng.normal(size=(1, 4, 8)).astype(np.float32)
        modified = base.copy()
        modified[0, 3, :] += 5.0
        mask = np.array([[True, True, True, False]])
        out_base = attn(Tensor(base), mask).data
        out_mod = attn(Tensor(modified), mask).data
        np.testing.assert_allclose(out_base[0, :3], out_mod[0, :3], atol=1e-5)


class TestTransformerBlocks:
    def test_encoder_layer_shape(self):
        layer = nn.TransformerEncoderLayer(16, 4, 32, dropout=0.0, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 7, 16)).astype(np.float32))
        assert layer(x).shape == (2, 7, 16)

    def test_encoder_stack_and_shared_layers_param_counts(self):
        independent = nn.TransformerEncoder(3, 16, 4, 32, share_layers=False, rng=0)
        shared = nn.TransformerEncoder(3, 16, 4, 32, share_layers=True, rng=0)
        assert shared.num_parameters() < independent.num_parameters()
        x = Tensor(np.zeros((1, 4, 16), dtype=np.float32))
        assert shared(x).shape == (1, 4, 16)
        assert independent(x).shape == (1, 4, 16)

    def test_decoder_stack_shape(self):
        decoder = nn.TransformerDecoder(2, 16, 4, 32, dropout=0.0, rng=0)
        x = Tensor(np.zeros((2, 5, 16), dtype=np.float32))
        assert decoder(x).shape == (2, 5, 16)

    def test_positional_embedding_bounds(self):
        pos = nn.PositionalEmbedding(8, 16, rng=0)
        assert pos(5, 2).shape == (2, 5, 16)
        with pytest.raises(ValueError):
            pos(9, 1)

    def test_sinusoidal_encoding_is_deterministic_and_scaled(self):
        enc = SinusoidalPositionalEncoding(32, 16, scale=0.02)
        a = enc(10, 1).data
        b = enc(10, 1).data
        np.testing.assert_allclose(a, b)
        assert np.abs(a).max() <= 0.02 + 1e-6
        with pytest.raises(ValueError):
            enc(64, 1)
