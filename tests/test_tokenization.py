"""Tests for templates, numeric binning, vocabulary and the log tokenizer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tokenization import (
    FEATURE_ORDER,
    JobRecord,
    LogTokenizer,
    NumericBinner,
    Vocabulary,
    record_to_sentence,
    sentence_to_record,
    streaming_prefixes,
)
from repro.tokenization.tokenizer import PROMPT_TOKENS


def make_record(label=0):
    features = {name: float(i + 1) * 10.0 for i, name in enumerate(FEATURE_ORDER)}
    return JobRecord(features=features, label=label)


class TestTemplates:
    def test_sentence_matches_paper_format(self):
        record = JobRecord(features={"wms_delay": 6.0, "queue_delay": 22.0}, label=0)
        assert record_to_sentence(record) == "wms_delay is 6.0 queue_delay is 22.0"
        assert record_to_sentence(record, include_label=True).endswith(", Normal")

    def test_anomalous_label_verbalisation(self):
        record = make_record(label=1)
        assert record_to_sentence(record, include_label=True).endswith(", Abnormal")

    def test_include_label_requires_label(self):
        with pytest.raises(ValueError):
            record_to_sentence(JobRecord(features={"runtime": 1.0}), include_label=True)

    def test_roundtrip_sentence_to_record(self):
        record = make_record(label=1)
        sentence = record_to_sentence(record, include_label=True)
        parsed = sentence_to_record(sentence)
        assert parsed.label == 1
        assert parsed.features == pytest.approx(record.features)

    def test_sentence_to_record_rejects_malformed(self):
        with pytest.raises(ValueError):
            sentence_to_record("runtime equals 5.0")

    def test_streaming_prefixes_grow_one_feature_at_a_time(self):
        record = make_record()
        prefixes = list(streaming_prefixes(record))
        assert len(prefixes) == len(FEATURE_ORDER)
        assert prefixes[0][1].startswith("wms_delay is")
        for (k, sentence), name in zip(prefixes, FEATURE_ORDER):
            assert sentence.count(" is ") == k

    def test_num_features_truncation(self):
        record = make_record()
        sentence = record_to_sentence(record, num_features=3)
        assert sentence.count(" is ") == 3

    def test_feature_vector_orders_and_nans(self):
        record = JobRecord(features={"runtime": 5.0})
        vec = record.feature_vector()
        assert vec[FEATURE_ORDER.index("runtime")] == 5.0
        assert np.isnan(vec[0])

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False), min_size=9, max_size=9
        ),
        label=st.sampled_from([0, 1]),
    )
    def test_roundtrip_property(self, values, label):
        features = {name: round(float(v), 1) for name, v in zip(FEATURE_ORDER, values)}
        record = JobRecord(features=features, label=label)
        parsed = sentence_to_record(record_to_sentence(record, include_label=True))
        assert parsed.label == label
        for name in FEATURE_ORDER:
            assert parsed.features[name] == pytest.approx(features[name], rel=1e-6)


class TestNumericBinner:
    def test_special_values(self):
        binner = NumericBinner()
        assert binner.bin(0.0) == "<num|zero>"
        assert binner.bin(float("nan")) == "<num|nan>"

    def test_sign_and_magnitude_encoded(self):
        binner = NumericBinner()
        assert binner.bin(250.0).startswith("<num|+e2")
        assert binner.bin(-250.0).startswith("<num|-e2")

    def test_monotone_in_magnitude(self):
        """Larger magnitudes never map to a strictly smaller (exponent, bin)."""
        binner = NumericBinner()

        def key(value):
            token = binner.bin(value)
            exponent = int(token.split("|")[1][1:].replace("e", ""))
            sub = int(token.split("b")[-1].rstrip(">"))
            return exponent, sub

        values = [1.0, 2.0, 5.0, 10.0, 99.0, 1e3, 5e6]
        keys = [key(v) for v in values]
        assert keys == sorted(keys)

    def test_all_tokens_cover_emitted_tokens(self):
        binner = NumericBinner()
        universe = set(binner.all_tokens())
        rng = np.random.default_rng(0)
        for value in rng.lognormal(3, 4, size=200):
            assert binner.bin(float(value)) in universe

    @settings(max_examples=50, deadline=None)
    @given(value=st.floats(min_value=1e-3, max_value=1e12, allow_nan=False))
    def test_binning_is_deterministic(self, value):
        binner = NumericBinner()
        assert binner.bin(value) == binner.bin(value)


class TestVocabulary:
    def test_special_tokens_present_and_stable(self):
        vocab = Vocabulary()
        assert vocab.pad_id == 0
        assert vocab.unk_id == 1
        assert len(vocab) == 7

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary(["alpha"])
        assert vocab.token_to_id("beta") == vocab.unk_id

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary(["a", "b", "c"])
        ids = vocab.encode(["a", "c", "b"])
        assert vocab.decode(ids) == ["a", "c", "b"]

    def test_build_respects_frequency_and_size(self):
        streams = [["x", "x", "y"], ["x", "z"]]
        vocab = Vocabulary.build(streams, min_frequency=2)
        assert "x" in vocab and "y" not in vocab
        capped = Vocabulary.build(streams, max_size=1)
        assert "x" in capped and "z" not in capped

    def test_id_to_token_bounds(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(IndexError):
            vocab.id_to_token(999)


class TestLogTokenizer:
    @pytest.fixture()
    def tok(self):
        sentences = [record_to_sentence(make_record()) for _ in range(3)]
        return LogTokenizer.build_from_corpus(sentences)

    def test_numbers_become_bin_tokens(self, tok):
        pieces = tok.tokenize("runtime is 2090.0")
        assert pieces[0] == "runtime"
        assert pieces[2].startswith("<num|")

    def test_prompt_tokens_always_in_vocab(self, tok):
        for word in ("normal", "abnormal", "category", "instruct"):
            assert word in tok.vocab
        assert set(PROMPT_TOKENS).issubset(set(tok.vocab.tokens()))

    def test_classification_encoding_shape_and_mask(self, tok):
        ids, mask = tok.encode_classification("runtime is 10.0", max_length=16)
        assert ids.shape == (16,) and mask.shape == (16,)
        assert ids[0] == tok.vocab.cls_id
        assert mask.sum() == 5  # CLS + 3 pieces + SEP
        assert ids[mask.sum() - 1] == tok.vocab.sep_id

    def test_classification_truncates_to_max_length(self, tok):
        long_sentence = record_to_sentence(make_record())
        ids, mask = tok.encode_classification(long_sentence, max_length=8)
        assert mask.sum() == 8

    def test_classification_min_length_validation(self, tok):
        with pytest.raises(ValueError):
            tok.encode_classification("runtime is 1.0", max_length=1)

    def test_batch_classification_stacks(self, tok):
        ids, mask = tok.encode_batch_classification(["runtime is 1.0", "runtime is 2.0"], max_length=12)
        assert ids.shape == (2, 12) and mask.dtype == bool

    def test_causal_encoding_has_bos(self, tok):
        ids = tok.encode_causal("runtime is 10.0")
        assert ids[0] == tok.vocab.bos_id

    def test_batch_causal_right_pads(self, tok):
        ids, mask = tok.encode_batch_causal(["runtime is 1.0", "runtime is 1.0 cpu_time is 2.0"])
        assert ids.shape == mask.shape
        assert mask[0].sum() < mask[1].sum()
        assert ids[0, mask[0].sum():].tolist() == [tok.vocab.pad_id] * (ids.shape[1] - mask[0].sum())

    def test_decode_skips_special_tokens(self, tok):
        ids, _ = tok.encode_classification("runtime is 10.0", max_length=12)
        text = tok.decode(ids)
        assert "[CLS]" not in text and "runtime" in text

    def test_unseen_magnitudes_never_unk(self, tok):
        ids = tok.encode_causal("runtime is 123456789.0", add_bos=False)
        assert tok.vocab.unk_id not in ids
