"""Tests for chunked-prefill piggybacking in the continuous-batching engine.

Pins the invariants of the per-step prefill token budget
(``prefill_chunk_tokens``):

* greedy outputs are token-identical to the unchunked path at every chunk
  size, across dense/paged layouts and fp32/int8 KV dtypes (Hypothesis
  lockstep property);
* the SLA identity ``queue + prefill + decode == wall`` holds *exactly*
  even when prefill spans several engine steps, with ``prefill_seconds``
  accumulating across chunks;
* chunk boundaries that land exactly on KV block boundaries stay exact;
* prefix-pool hits cover part of the prompt, so chunked prefill only
  forwards the uncovered suffix;
* cancelling (or timing out) a request mid-prefill reclaims its
  scheduling slot and every KV block it held;
* ``min_admit_rows`` batch-closing still applies to chunked admission;
* the new :class:`EngineStats` occupancy fields (per-step prefill tokens,
  decode rows, chunk counts, stall histogram) are populated coherently.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import DecoderLM, get_config
from repro.serving import ContinuousBatchingEngine, PrefixCachePool

VOCAB = 61
STOP_IDS = {3, 5, 7}


@pytest.fixture(scope="module")
def model():
    m = DecoderLM(get_config("gpt2"), VOCAB, rng=0)
    m.eval()
    return m


class ManualClock:
    """Injectable clock: time only moves when the test advances it."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class TickingClock(ManualClock):
    """Deterministic clock that advances a fixed tick on every read, so
    timed sections (chunk forwards, admissions) have nonzero duration."""

    def __call__(self) -> float:
        self.now += 0.0009765625  # 2**-10: exact in binary floats
        return self.now


def _prompts(seed: int, lengths) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.integers(1, VOCAB, size=int(n)) for n in lengths]


def _run(model, prompts, *, chunk=None, pool=None, clock=None, **kwargs):
    if clock is not None:
        kwargs["clock"] = clock
    engine = ContinuousBatchingEngine(
        model,
        max_batch_rows=4,
        prefill_chunk_tokens=chunk,
        cache_pool=pool,
        **kwargs,
    )
    requests = [
        engine.submit(p, max_new_tokens=10, stop_ids=STOP_IDS) for p in prompts
    ]
    if clock is None:
        engine.drain()
    else:
        while engine.has_work:
            engine.step(force_admit=True)
            clock.advance(0.125)
    return engine, requests


# ---------------------------------------------------------------------- #
# token parity
# ---------------------------------------------------------------------- #
class TestChunkedParity:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        chunk=st.integers(1, 80),
        layout=st.sampled_from([("dense", "fp32"), ("paged", "fp32"), ("paged", "int8")]),
    )
    def test_chunked_matches_unchunked_lockstep(self, model, seed, chunk, layout):
        """Any chunk size yields the unchunked path's exact greedy tokens."""
        kv_layout, kv_dtype = layout
        rng = np.random.default_rng(seed)
        lengths = rng.integers(2, 70, size=6)
        prompts = _prompts(seed, lengths)
        kwargs = dict(kv_layout=kv_layout, kv_dtype=kv_dtype, min_admit_rows=2)
        _, base = _run(model, prompts, chunk=None, **kwargs)
        _, got = _run(model, prompts, chunk=chunk, **kwargs)
        for a, b in zip(base, got):
            assert a.finish_reason == b.finish_reason
            np.testing.assert_array_equal(a.result, b.result)

    def test_chunk_edge_at_block_boundary(self, model):
        """Prompt and chunk sizes landing exactly on 16-token KV block
        boundaries (flush edges) keep paged output identical to dense."""
        prompts = _prompts(3, [16, 32, 48, 16])
        _, base = _run(model, prompts, chunk=None, kv_layout="dense")
        _, got = _run(model, prompts, chunk=16, kv_layout="paged")
        for a, b in zip(base, got):
            np.testing.assert_array_equal(a.result, b.result)
        # Off-by-one around the boundary as well.
        for chunk in (15, 17):
            _, got = _run(model, prompts, chunk=chunk, kv_layout="paged")
            for a, b in zip(base, got):
                np.testing.assert_array_equal(a.result, b.result)


# ---------------------------------------------------------------------- #
# SLA accounting
# ---------------------------------------------------------------------- #
class TestChunkedSLA:
    def test_prefill_seconds_accumulates_and_identity_holds(self, model):
        """queue + prefill + decode == wall exactly, with >= 2 chunks."""
        clock = TickingClock()
        prompts = _prompts(11, [40, 52, 9])
        engine, requests = _run(model, prompts, chunk=8, clock=clock)
        for request in requests:
            assert request.done
            assert request.prefill_chunks >= 2 or len(request.prompt_ids) <= 8
            total = (
                request.queue_seconds
                + request.prefill_seconds
                + request.decode_seconds
            )
            assert total == request.wall_seconds  # exact, not approx
            assert request.prefill_seconds > 0.0
            assert request.ttft_seconds is not None
            assert request.ttft_seconds <= request.wall_seconds

    def test_stats_track_chunk_occupancy(self, model):
        prompts = _prompts(13, [33, 21, 6, 45])
        engine, requests = _run(model, prompts, chunk=8)
        stats = engine.stats
        assert stats.prefill_tokens == sum(len(p) for p in prompts)
        assert stats.prefill_chunks == sum(r.prefill_chunks for r in requests)
        assert stats.prefill_chunks > len(prompts)  # something actually chunked
        assert len(stats.chunks_per_request) == len(prompts)
        assert len(stats.step_prefill_tokens) == len(stats.step_decode_rows)
        assert sum(stats.step_prefill_tokens) == stats.prefill_tokens
        # every step respected the budget
        assert max(stats.step_prefill_tokens) <= 8
        histogram = stats.stall_histogram()
        assert sum(histogram.values()) == len(stats.step_prefill_tokens)
        assert histogram["0"] < len(stats.step_prefill_tokens)  # prefill happened
        summary = stats.sla_summary()
        for key in (
            "prefill_tokens",
            "prefill_chunks",
            "mean_prefill_chunks",
            "mean_step_prefill_tokens",
            "mean_step_decode_rows",
            "prefill_stall_histogram",
        ):
            assert key in summary

    def test_unchunked_engine_reports_zero_chunks(self, model):
        prompts = _prompts(5, [12, 20])
        engine, requests = _run(model, prompts, chunk=None)
        assert engine.stats.prefill_chunks == 0
        assert all(r.prefill_chunks == 0 for r in requests)

    def test_invalid_budget_rejected(self, model):
        with pytest.raises(ValueError):
            ContinuousBatchingEngine(model, prefill_chunk_tokens=0)
        with pytest.raises(ValueError):
            ContinuousBatchingEngine(model, prefill_chunk_tokens=-4)


# ---------------------------------------------------------------------- #
# pool interaction
# ---------------------------------------------------------------------- #
class TestChunkedPool:
    def test_pool_hit_covers_partial_chunk(self, model):
        """A pooled prefix skips covered tokens: chunked prefill forwards
        only the uncovered suffix, and outputs stay identical."""
        rng = np.random.default_rng(23)
        head = rng.integers(1, VOCAB, size=37)
        prompts = [
            np.concatenate([head, rng.integers(1, VOCAB, size=n)]) for n in (9, 14)
        ]
        _, base = _run(model, prompts, chunk=None, kv_layout="paged")

        pool = PrefixCachePool.default(model, "paged", "fp32")
        engine = ContinuousBatchingEngine(
            model,
            max_batch_rows=4,
            prefill_chunk_tokens=8,
            cache_pool=pool,
            kv_layout="paged",
        )
        requests = []
        for prompt in prompts:  # sequential, so the head gets banked first
            requests.append(engine.submit(prompt, max_new_tokens=10, stop_ids=STOP_IDS))
            engine.drain()
        for a, b in zip(base, requests):
            np.testing.assert_array_equal(a.result, b.result)
        # The second request reuses the first's banked shared head.
        assert requests[1].reused_tokens > 0
        assert engine.stats.prefill_tokens < sum(len(p) for p in prompts)

    def test_partial_prefix_checked_in_on_cancel(self, model):
        """Cancelling mid-prefill banks the partial prefix in the pool."""
        rng = np.random.default_rng(29)
        prompt = rng.integers(1, VOCAB, size=50)
        pool = PrefixCachePool.default(model, "paged", "fp32")
        engine = ContinuousBatchingEngine(
            model,
            max_batch_rows=2,
            prefill_chunk_tokens=8,
            cache_pool=pool,
            kv_layout="paged",
        )
        request = engine.submit(prompt, max_new_tokens=4)
        engine.step(force_admit=True)  # one 8-token chunk only
        assert not request.done
        assert engine.cancel(request)
        assert request.finish_reason == "cancelled"
        assert engine.num_active == 0
        # The banked prefix serves a resubmission of the same prompt.
        request2 = engine.submit(prompt, max_new_tokens=4)
        engine.drain()
        assert request2.reused_tokens > 0


# ---------------------------------------------------------------------- #
# cancellation / reclamation
# ---------------------------------------------------------------------- #
class TestMidPrefillReclaim:
    @pytest.mark.parametrize("reason", ["cancelled", "timeout"])
    def test_cancel_mid_prefill_reclaims_slot_and_blocks(self, model, reason):
        rng = np.random.default_rng(31)
        prompt = rng.integers(1, VOCAB, size=60)
        engine = ContinuousBatchingEngine(
            model,
            max_batch_rows=2,
            prefill_chunk_tokens=8,
            kv_layout="paged",
        )
        allocator = engine.batch.cache.allocator
        baseline = allocator.blocks_in_use
        request = engine.submit(prompt, max_new_tokens=4)
        engine.step(force_admit=True)
        assert engine.num_active == 1  # mid-prefill slot held
        assert not request.done
        assert engine.cancel(request, reason=reason)
        assert request.done
        assert request.finish_reason == reason
        assert engine.num_active == 0
        assert allocator.blocks_in_use == baseline  # staging blocks freed
        if reason == "timeout":
            assert engine.stats.timeouts == 1
        # The engine keeps serving fresh work afterwards.
        after = engine.submit(rng.integers(1, VOCAB, size=6), max_new_tokens=3)
        engine.drain()
        assert after.done and after.finish_reason in ("stop", "length")
        assert allocator.blocks_in_use == baseline

    def test_reset_mid_prefill_releases_everything(self, model):
        rng = np.random.default_rng(37)
        engine = ContinuousBatchingEngine(
            model,
            max_batch_rows=4,
            prefill_chunk_tokens=4,
            kv_layout="paged",
        )
        allocator = engine.batch.cache.allocator
        baseline = allocator.blocks_in_use
        for n in (30, 44):
            engine.submit(rng.integers(1, VOCAB, size=n), max_new_tokens=4)
        engine.step(force_admit=True)
        assert engine.num_active == 2
        engine.reset()
        assert engine.num_active == 0
        assert allocator.blocks_in_use == baseline


# ---------------------------------------------------------------------- #
# admission policy
# ---------------------------------------------------------------------- #
class TestChunkedAdmissionPolicy:
    def test_min_admit_rows_still_gates_chunked_admission(self, model):
        """A prefilling row counts as a live slot, and a lone straggler is
        held back by ``min_admit_rows`` exactly as on the atomic path."""
        engine = ContinuousBatchingEngine(
            model,
            max_batch_rows=4,
            min_admit_rows=2,
            prefill_chunk_tokens=4,
        )
        rng = np.random.default_rng(41)
        engine.submit(rng.integers(1, VOCAB, size=30), max_new_tokens=8)
        engine.step(force_admit=True)
        assert engine.num_active == 1  # chunk-prefilling, slot already held
        engine.submit(rng.integers(1, VOCAB, size=25), max_new_tokens=4)
        engine.step()
        # One straggler below min_admit_rows: held while the batch runs.
        assert engine.num_active == 1
        engine.submit(rng.integers(1, VOCAB, size=7), max_new_tokens=4)
        engine.step()
        assert engine.num_active == 3  # group formed, all slots held at once
        engine.drain()
        assert engine.stats.finished == 3

    def test_idle_deadline_admits_lone_chunked_request(self, model):
        clock = ManualClock()
        engine = ContinuousBatchingEngine(
            model,
            max_batch_rows=4,
            admit_deadline=0.5,
            prefill_chunk_tokens=8,
            clock=clock,
        )
        rng = np.random.default_rng(43)
        engine.submit(rng.integers(1, VOCAB, size=20), max_new_tokens=4)
        engine.step()
        assert engine.num_active == 0  # idle engine holds for co-arrivals
        clock.advance(1.0)
        engine.step()
        assert engine.num_active == 1  # deadline admitted the lone request
        engine.drain()
        assert engine.stats.finished == 1
