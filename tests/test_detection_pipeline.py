"""Integration tests for the public detection API: pipeline, online and early detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import WorkflowAnomalyDetector, early_detection_statistics
from repro.detection.online import OnlineDetector
from repro.tokenization.templates import FEATURE_ORDER, JobRecord
from repro.training import SFTTrainer, TrainingConfig


@pytest.fixture(scope="module")
def fitted_detector(registry, small_dataset):
    detector = WorkflowAnomalyDetector.from_pretrained(
        "distilbert-base-uncased",
        registry=registry,
        training_config=TrainingConfig(epochs=4, max_length=40, seed=0),
    )
    detector.fit_split(small_dataset.train.subsample(600, rng=0))
    return detector


class TestPipeline:
    def test_requires_fit_before_predict(self, registry):
        detector = WorkflowAnomalyDetector.from_pretrained("albert-base-v2", registry=registry)
        with pytest.raises(RuntimeError):
            detector.predict(["runtime is 10.0"])

    def test_end_to_end_accuracy(self, fitted_detector, small_dataset):
        report = fitted_detector.evaluate_split(small_dataset.test)
        majority = 1 - small_dataset.test.anomaly_fraction()
        assert report.accuracy > majority
        assert report.recall > 0.3

    def test_predict_and_scores_align(self, fitted_detector, small_dataset):
        sentences = small_dataset.test.sentences()[:20]
        labels = fitted_detector.predict(sentences)
        scores = fitted_detector.anomaly_scores(sentences)
        np.testing.assert_array_equal(labels, (scores > 0.5).astype(int))

    def test_predict_records(self, fitted_detector, small_dataset):
        records = small_dataset.test.records[:10]
        labels = fitted_detector.predict_records(records)
        assert labels.shape == (10,)

    def test_fit_records_path(self, registry, small_dataset):
        detector = WorkflowAnomalyDetector.from_pretrained(
            "albert-base-v2", registry=registry,
            training_config=TrainingConfig(epochs=1, max_length=40),
        )
        detector.fit_records(small_dataset.train.records[:100])
        assert detector.predict(["runtime is 10.0"]).shape == (1,)

    def test_debias_flag_augments_training(self, registry, small_dataset):
        detector = WorkflowAnomalyDetector.from_pretrained(
            "albert-base-v2", registry=registry,
            training_config=TrainingConfig(epochs=1, max_length=40), debias=True,
        )
        sub = small_dataset.train.subsample(100, rng=1)
        detector.fit(sub.sentences(), sub.labels())
        assert detector.predict(["runtime is 10.0"]).shape == (1,)


class TestOnlineDetection:
    def test_stream_yields_one_prediction_per_feature(self, fitted_detector, small_dataset):
        record = small_dataset.test.records[0]
        predictions = fitted_detector.stream(record)
        assert len(predictions) == len(FEATURE_ORDER)
        assert [p.latest_feature for p in predictions] == list(FEATURE_ORDER)
        assert predictions[0].sentence.count(" is ") == 1
        assert predictions[-1].sentence.count(" is ") == len(FEATURE_ORDER)

    def test_label_names_follow_paper_convention(self, fitted_detector, small_dataset):
        prediction = fitted_detector.stream(small_dataset.test.records[0])[0]
        assert prediction.label_name in ("LABEL_0", "LABEL_1")
        assert 0.0 <= prediction.score <= 1.0

    def test_stream_batch_coalesces_steps_and_matches_per_record(
        self, fitted_detector, small_dataset, monkeypatch
    ):
        """One encoder batch per arrival step; predictions match ``stream``."""
        records = small_dataset.test.records[:6]
        online = fitted_detector.online
        calls = []
        original = online.trainer.predict_proba

        def counting(sentences, *args, **kwargs):
            calls.append(len(sentences))
            return original(sentences, *args, **kwargs)

        monkeypatch.setattr(online.trainer, "predict_proba", counting)
        batched = online.stream_batch(records)
        # Coalesced: one call per step over all records, not records × steps.
        assert len(calls) == len(FEATURE_ORDER)
        assert all(size == len(records) for size in calls)
        sequential = [list(online.stream(r)) for r in records]
        for batch_stream, seq_stream in zip(batched, sequential):
            assert [p.label for p in batch_stream] == [p.label for p in seq_stream]
            assert [p.sentence for p in batch_stream] == [p.sentence for p in seq_stream]
            assert [p.latest_feature for p in batch_stream] == [
                p.latest_feature for p in seq_stream
            ]
            for b, s in zip(batch_stream, seq_stream):
                assert abs(b.score - s.score) < 1e-5

    def test_detect_returns_first_anomalous_flag_or_none(self, fitted_detector, small_dataset):
        online = fitted_detector.online
        anomalous = next(r for r in small_dataset.test.records if r.label == 1)
        normal = next(r for r in small_dataset.test.records if r.label == 0)
        flagged = online.detect(anomalous, threshold=0.0)
        assert flagged is None or flagged.label == 1
        result = online.detect(normal, threshold=0.999999)
        assert result is None or result.score >= 0.999999

    def test_stream_requires_known_features(self, fitted_detector):
        with pytest.raises(ValueError):
            fitted_detector.stream(JobRecord(features={"unknown_feature": 1.0}))

    def test_first_correct_step_requires_label(self, fitted_detector):
        online = fitted_detector.online
        with pytest.raises(ValueError):
            online.first_correct_step(JobRecord(features={"runtime": 1.0}, label=None))


class TestEarlyDetection:
    def test_statistics_account_for_every_job(self, fitted_detector, small_dataset):
        records = small_dataset.test.subsample(40, rng=2).records
        stats = fitted_detector.early_detection(records)
        counted = sum(count for _, count in stats.as_series()) + stats.never_detected
        assert counted == len(records)
        assert stats.total_jobs == len(records)
        assert stats.detected_jobs == len(records) - stats.never_detected

    def test_most_jobs_detected_at_first_stage(self, fitted_detector, small_dataset):
        """Fig. 8: the bulk of jobs are correctly classified from wms_delay alone."""
        records = small_dataset.test.subsample(60, rng=3).records
        stats = fitted_detector.early_detection(records)
        assert stats.fraction_detected_by("wms_delay") > 0.3
        assert stats.fraction_detected_by(FEATURE_ORDER[-1]) >= stats.fraction_detected_by("wms_delay")

    def test_fraction_detected_by_unknown_feature(self, fitted_detector, small_dataset):
        stats = fitted_detector.early_detection(small_dataset.test.subsample(5, rng=4).records)
        with pytest.raises(KeyError):
            stats.fraction_detected_by("not_a_feature")

    def test_standalone_function_with_raw_trainer(self, registry, small_dataset):
        model = registry.load_encoder("albert-base-v2")
        trainer = SFTTrainer(model, registry.tokenizer, TrainingConfig(epochs=1, max_length=40))
        sub = small_dataset.train.subsample(120, rng=5)
        trainer.fit(sub.sentences(), sub.labels())
        stats = early_detection_statistics(OnlineDetector(trainer), small_dataset.test.records[:10])
        assert stats.total_jobs == 10
