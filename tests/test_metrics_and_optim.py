"""Tests for metrics (vs. brute-force/known values) and optimizers/schedulers/losses."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Linear
from repro.nn.module import Parameter
from repro.tensor import Tensor, functional as F
from repro.training import (
    Adam,
    AdamW,
    ConstantSchedule,
    CosineSchedule,
    LinearWarmupSchedule,
    SGD,
    accuracy_score,
    average_precision_score,
    classification_report,
    clip_grad_norm,
    confusion_matrix,
    f1_score,
    precision_at_k,
    precision_score,
    recall_score,
    roc_auc_score,
)
from repro.training.loss import causal_lm_loss, completion_only_loss


class TestMetrics:
    def test_accuracy_and_confusion(self):
        y_true = np.array([0, 1, 1, 0])
        y_pred = np.array([0, 1, 0, 1])
        assert accuracy_score(y_true, y_pred) == 0.5
        cm = confusion_matrix(y_true, y_pred)
        assert cm.tolist() == [[1, 1], [1, 1]]

    def test_precision_recall_f1_known_values(self):
        y_true = np.array([1, 1, 1, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0, 0])
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_degenerate_predictions(self):
        y_true = np.array([0, 1])
        all_negative = np.array([0, 0])
        assert precision_score(y_true, all_negative) == 0.0
        assert recall_score(y_true, all_negative) == 0.0
        assert f1_score(y_true, all_negative) == 0.0

    def test_roc_auc_perfect_and_random(self):
        y_true = np.array([0, 0, 1, 1])
        assert roc_auc_score(y_true, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0
        assert roc_auc_score(y_true, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0
        assert roc_auc_score(y_true, np.array([0.5, 0.5, 0.5, 0.5])) == 0.5

    def test_roc_auc_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.array([1, 1]), np.array([0.1, 0.2]))

    @settings(max_examples=30, deadline=None)
    @given(
        labels=st.lists(st.sampled_from([0, 1]), min_size=4, max_size=40),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_roc_auc_matches_pairwise_bruteforce(self, labels, seed):
        labels = np.array(labels)
        if labels.sum() == 0 or labels.sum() == len(labels):
            return
        scores = np.random.default_rng(seed).normal(size=len(labels))
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        brute = np.mean([(p > n) + 0.5 * (p == n) for p in pos for n in neg])
        assert roc_auc_score(labels, scores) == pytest.approx(brute, abs=1e-9)

    def test_average_precision_perfect_ranking(self):
        y_true = np.array([1, 1, 0, 0])
        y_score = np.array([0.9, 0.8, 0.2, 0.1])
        assert average_precision_score(y_true, y_score) == pytest.approx(1.0)

    def test_average_precision_known_value(self):
        # ranking: pos, neg, pos -> AP = (1/1 + 2/3) / 2
        y_true = np.array([1, 0, 1])
        y_score = np.array([0.9, 0.5, 0.1])
        assert average_precision_score(y_true, y_score) == pytest.approx((1 + 2 / 3) / 2)

    def test_precision_at_k_defaults_to_num_positives(self):
        y_true = np.array([1, 0, 1, 0, 0])
        y_score = np.array([0.9, 0.8, 0.7, 0.2, 0.1])
        assert precision_at_k(y_true, y_score) == pytest.approx(0.5)
        assert precision_at_k(y_true, y_score, k=1) == 1.0

    def test_classification_report_bundle(self):
        report = classification_report(np.array([0, 1, 1]), np.array([0, 1, 0]))
        assert report.accuracy == pytest.approx(2 / 3)
        assert set(report.as_dict()) == {"accuracy", "precision", "recall", "f1"}

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            accuracy_score(np.array([1]), np.array([1, 0]))


def _quadratic_problem(seed=0):
    """A tiny least-squares problem every optimizer should solve."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(64, 3)).astype(np.float32)
    true_w = np.array([[1.5, -2.0, 0.5]], dtype=np.float32)
    y = x @ true_w.T
    return x, y, true_w


class TestOptimizers:
    @pytest.mark.parametrize("optimizer_cls,lr", [(SGD, 0.1), (Adam, 0.05), (AdamW, 0.05)])
    def test_optimizers_fit_linear_regression(self, optimizer_cls, lr):
        x, y, true_w = _quadratic_problem()
        layer = Linear(3, 1, bias=False, rng=0)
        optimizer = optimizer_cls(list(layer.parameters()), lr=lr)
        for _ in range(200):
            pred = layer(Tensor(x))
            loss = F.mse_loss(pred, y)
            layer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)

    def test_frozen_parameters_not_updated(self):
        layer = Linear(3, 1, rng=0)
        layer.weight.requires_grad = False
        before = layer.weight.data.copy()
        optimizer = Adam(list(layer.parameters()), lr=0.1)
        loss = F.mse_loss(layer(Tensor(np.ones((4, 3), dtype=np.float32))), np.zeros((4, 1)))
        loss.backward()
        optimizer.step()
        np.testing.assert_allclose(layer.weight.data, before)

    def test_sgd_momentum_and_weight_decay(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        optimizer = SGD([p], lr=0.1, momentum=0.9, weight_decay=0.1)
        p.grad = np.array([1.0], dtype=np.float32)
        optimizer.step()
        assert p.data[0] < 1.0

    def test_invalid_hyperparameters(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            SGD([p], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 10.0, dtype=np.float32)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_zero_grad_clears(self):
        p = Parameter(np.zeros(2))
        p.grad = np.ones(2)
        Adam([p], lr=0.1).zero_grad()
        assert p.grad is None


class TestSchedulers:
    def _optimizer(self):
        return Adam([Parameter(np.zeros(1))], lr=1.0)

    def test_constant(self):
        sched = ConstantSchedule(self._optimizer())
        assert sched.step() == 1.0

    def test_linear_warmup_then_decay(self):
        optimizer = self._optimizer()
        sched = LinearWarmupSchedule(optimizer, warmup_steps=5, total_steps=10)
        warmup = [sched.step() for _ in range(5)]
        assert warmup == sorted(warmup)
        assert warmup[-1] == pytest.approx(1.0)
        decay = [sched.step() for _ in range(5)]
        assert decay == sorted(decay, reverse=True)
        assert optimizer.lr == pytest.approx(0.0)

    def test_cosine_decays_to_min(self):
        optimizer = self._optimizer()
        sched = CosineSchedule(optimizer, total_steps=10, min_lr=0.1)
        values = [sched.step() for _ in range(10)]
        assert values[0] > values[-1]
        assert values[-1] == pytest.approx(0.1, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearWarmupSchedule(self._optimizer(), warmup_steps=5, total_steps=2)
        with pytest.raises(ValueError):
            CosineSchedule(self._optimizer(), total_steps=0)


class TestLMLosses:
    def test_causal_lm_loss_ignores_padding(self):
        vocab, seq = 7, 5
        logits = Tensor(np.zeros((2, seq, vocab), dtype=np.float32), requires_grad=True)
        ids = np.ones((2, seq), dtype=np.int64)
        mask = np.ones((2, seq), dtype=bool)
        mask[1, 3:] = False
        loss = causal_lm_loss(logits, ids, mask)
        assert loss.data == pytest.approx(np.log(vocab), rel=1e-4)

    def test_completion_only_loss_single_position(self):
        vocab, seq = 5, 4
        logits_data = np.zeros((1, seq, vocab), dtype=np.float32)
        logits_data[0, 2, 3] = 10.0  # position 2 predicts token at position 3
        logits = Tensor(logits_data, requires_grad=True)
        ids = np.array([[0, 1, 2, 3]], dtype=np.int64)
        answer_mask = np.array([[False, False, False, True]])
        loss = completion_only_loss(logits, ids, answer_mask)
        assert float(loss.data) < 0.01

    def test_completion_only_loss_validation(self):
        logits = Tensor(np.zeros((1, 3, 4), dtype=np.float32))
        ids = np.zeros((1, 3), dtype=np.int64)
        with pytest.raises(ValueError):
            completion_only_loss(logits, ids, np.zeros((1, 3), dtype=bool))
        with pytest.raises(ValueError):
            completion_only_loss(logits, ids, np.zeros((2, 3), dtype=bool))
