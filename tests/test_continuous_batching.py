"""Tests for the continuous-batching decode engine and its stepping core.

Pins the iteration-level-scheduling invariants:

* KV-cache row management — admission right-aligns a row against the live
  end, retirement drops rows in place, and ``realign`` grows/compacts the
  ragged column layout without touching the stored keys/values;
* the :class:`~repro.models.decoder.DecodeBatch` stepping core decodes
  rows admitted mid-flight to the same greedy tokens as the sequential
  cached path, including across retirements and compaction;
* the :class:`~repro.serving.ContinuousBatchingEngine` admits requests
  submitted after decoding has started into the live batch *without
  restarting it*, retires finished rows immediately (freeing their slots
  for queued work), honours the deadline-based batch-closing policy, and
  produces greedy outputs identical to sequential/uncached decoding under
  arrival-order permutation;
* per-request SLA stats are internally consistent: queue + prefill +
  decode equals wall time exactly, TTFT falls between prefill end and
  completion, and decode steps equal emitted tokens.
"""

from __future__ import annotations

import numpy as np
import pytest

from parity import assert_generations_equal
from repro.models import DecoderLM, get_config
from repro.models.decoder import DecodeState
from repro.serving import ContinuousBatchingEngine, PrefixCachePool
from repro.tensor import no_grad

VOCAB = 64


@pytest.fixture(scope="module")
def model():
    m = DecoderLM(get_config("gpt2"), VOCAB, rng=0)
    m.eval()
    return m


@pytest.fixture()
def ragged_prompts():
    rng = np.random.default_rng(17)
    return [rng.integers(1, VOCAB, size=n) for n in (4, 11, 6, 9, 5, 13, 7, 8)]


class ManualClock:
    """Injectable clock: time only moves when the test advances it."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class TickingClock:
    """Strictly increasing clock so every stamped interval is positive."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 0.001
        return self.now


# ---------------------------------------------------------------------- #
# KV-cache row management
# ---------------------------------------------------------------------- #
class TestCacheRowOps:
    def _prefill(self, model, prompt):
        cache = model.make_cache(1, len(prompt))
        with no_grad():
            model.forward_incremental(prompt[None, :], cache)
        return cache

    def test_admit_row_right_aligns_against_live_end(self, model, ragged_prompts):
        live = model.make_cache(0, 32)
        a, b = ragged_prompts[1][:10], ragged_prompts[2][:6]
        src_a, src_b = self._prefill(model, a), self._prefill(model, b)
        assert live.admit_row(src_a) == 0
        assert live.length == 10 and live.batch_size == 1
        start_b = live.admit_row(src_b)
        assert start_b == 4  # right-aligned: 6 tokens ending at column 10
        assert live.length == 10 and live.batch_size == 2
        np.testing.assert_array_equal(
            live.layers[0].keys[1, :, 4:10], src_b.layers[0].keys[0, :, :6]
        )
        # Admitting a row wider than the live end requires a prior realign.
        wide_src = self._prefill(model, ragged_prompts[5][:13])
        with pytest.raises(ValueError):
            live.admit_row(wide_src)
        starts = live.realign(np.array([0, 4]), 13)
        np.testing.assert_array_equal(starts, [3, 7])
        assert live.length == 13
        np.testing.assert_array_equal(
            live.layers[0].keys[1, :, 7:13], src_b.layers[0].keys[0, :, :6]
        )
        assert live.admit_row(wide_src) == 0

    def test_retire_rows_keeps_survivors_and_resets_when_empty(self, model, ragged_prompts):
        live = model.make_cache(0, 16)
        sources = [self._prefill(model, p[:5]) for p in ragged_prompts[1:4]]
        for src in sources:
            live.admit_row(src)
        live.retire_rows(np.array([2, 0]))  # drop row 1, reorder survivors
        assert live.batch_size == 2 and live.length == 5
        np.testing.assert_array_equal(
            live.layers[0].keys[0, :, :5], sources[2].layers[0].keys[0, :, :5]
        )
        np.testing.assert_array_equal(
            live.layers[0].keys[1, :, :5], sources[0].layers[0].keys[0, :, :5]
        )
        live.retire_rows(np.array([], dtype=np.int64))
        assert live.batch_size == 0 and live.length == 0

    def test_realign_validates_geometry(self, model):
        live = model.make_cache(0, 16)
        live.admit_row(self._prefill(model, np.arange(1, 9)))
        with pytest.raises(ValueError):
            live.realign(np.array([0]), 4)  # cannot hold an 8-wide row
        with pytest.raises(ValueError):
            live.realign(np.array([0]), 17)  # beyond capacity
        with pytest.raises(ValueError):
            live.realign(np.array([0, 0]), 10)  # one start per row


# ---------------------------------------------------------------------- #
# DecodeBatch stepping core
# ---------------------------------------------------------------------- #
class TestDecodeBatch:
    def test_separately_admitted_rows_match_sequential(self, model, ragged_prompts):
        batch = model.make_decode_batch()
        states = [
            DecodeState(prompt_ids=p, max_new_tokens=8) for p in ragged_prompts[:3]
        ]
        for state in states:
            batch.admit(state)
        while batch.num_rows:
            model.decode_step(batch)
        expected = [model.generate(p, max_new_tokens=8) for p in ragged_prompts[:3]]
        assert_generations_equal(
            [s.output() for s in states], expected, context="separate admission"
        )

    def test_mid_decode_admission_preserves_all_rows(self, model, ragged_prompts):
        batch = model.make_decode_batch()
        first = DecodeState(prompt_ids=ragged_prompts[0], max_new_tokens=10)
        batch.admit(first)
        for _ in range(3):
            batch.step()
        assert first.gen_len == 3
        late = DecodeState(prompt_ids=ragged_prompts[1], max_new_tokens=6)
        batch.admit(late)
        assert batch.num_rows == 2 and first.gen_len == 3  # no restart
        while batch.num_rows:
            batch.step()
        assert_generations_equal(
            [first.output(), late.output()],
            [
                model.generate(ragged_prompts[0], max_new_tokens=10),
                model.generate(ragged_prompts[1], max_new_tokens=6),
            ],
            context="mid-decode admission",
        )

    def test_compaction_after_long_row_retires(self, model, ragged_prompts):
        """A near-limit row's departure must not cap its batchmates.

        The long row drives the live end to the context window and retires;
        compaction shifts the short rows left so they decode their full
        budget — the old monolithic loop needed a sequential fallback here.
        """
        rng = np.random.default_rng(23)
        max_pos = model.config.max_position
        long_prompt = rng.integers(1, VOCAB, size=max_pos - 3)
        batch = model.make_decode_batch()
        long_state = DecodeState(prompt_ids=long_prompt, max_new_tokens=10)
        batch.admit(long_state)
        batch.step()
        short_state = DecodeState(prompt_ids=ragged_prompts[2], max_new_tokens=12)
        batch.admit(short_state)
        while batch.num_rows:
            batch.step()
        assert long_state.finish_reason == "context"
        assert short_state.finish_reason == "length"
        assert_generations_equal(
            [long_state.output(), short_state.output()],
            [
                model.generate(long_prompt, max_new_tokens=10),
                model.generate(ragged_prompts[2], max_new_tokens=12),
            ],
            context="compaction",
        )

    def test_admission_grows_live_end_for_longer_newcomer(self, model, ragged_prompts):
        batch = model.make_decode_batch()
        short = DecodeState(prompt_ids=ragged_prompts[0], max_new_tokens=8)
        batch.admit(short)
        batch.step()
        longer = DecodeState(prompt_ids=ragged_prompts[5], max_new_tokens=8)
        batch.admit(longer)  # wider than the live end: existing rows realign
        while batch.num_rows:
            batch.step()
        assert_generations_equal(
            [short.output(), longer.output()],
            [
                model.generate(ragged_prompts[0], max_new_tokens=8),
                model.generate(ragged_prompts[5], max_new_tokens=8),
            ],
            context="growing admission",
        )


# ---------------------------------------------------------------------- #
# ContinuousBatchingEngine
# ---------------------------------------------------------------------- #
class TestContinuousBatchingEngine:
    def test_staggered_arrivals_three_way_parity(self, model, ragged_prompts):
        engine = ContinuousBatchingEngine(model, max_batch_rows=3)
        handles = [engine.submit(p, max_new_tokens=9) for p in ragged_prompts[:2]]
        engine.step()
        engine.step()
        assert engine.stats.steps == 2
        for p in ragged_prompts[2:6]:
            handles.append(engine.submit(p, max_new_tokens=9))
            engine.step()
        engine.drain()
        assert all(h.done for h in handles)
        assert engine.stats.admissions >= 2  # later arrivals joined mid-decode
        cached = [
            model.generate(p, max_new_tokens=9, use_cache=True)
            for p in ragged_prompts[:6]
        ]
        uncached = [
            model.generate(p, max_new_tokens=9, use_cache=False)
            for p in ragged_prompts[:6]
        ]
        assert_generations_equal(
            [h.result for h in handles], cached, context="engine vs sequential cached"
        )
        assert_generations_equal(
            [h.result for h in handles], uncached, context="engine vs uncached"
        )

    def test_arrival_order_permutation_invariance(self, model, ragged_prompts):
        prompts = ragged_prompts[:5]

        def run(order):
            engine = ContinuousBatchingEngine(model, max_batch_rows=2)
            handles = {}
            for idx in order[:2]:
                handles[idx] = engine.submit(prompts[idx], max_new_tokens=7)
            engine.step()
            for idx in order[2:]:
                handles[idx] = engine.submit(prompts[idx], max_new_tokens=7)
                engine.step()
            engine.drain()
            return [handles[i].result for i in range(len(prompts))]

        base = run(list(range(5)))
        assert_generations_equal(
            base,
            [model.generate(p, max_new_tokens=7) for p in prompts],
            context="engine base order",
        )
        for order in ([4, 3, 2, 1, 0], [2, 0, 4, 1, 3]):
            assert_generations_equal(
                run(order), base, context=f"arrival order {order}"
            )

    def test_mid_decode_admission_does_not_restart(self, model, ragged_prompts):
        engine = ContinuousBatchingEngine(model, max_batch_rows=4)
        first = engine.submit(ragged_prompts[0], max_new_tokens=10)
        for _ in range(4):
            engine.step()
        assert first.state.gen_len == 4
        late = engine.submit(ragged_prompts[1], max_new_tokens=5)
        engine.step()
        # The late request was admitted into the running batch: decoding
        # continued (no re-prefill of the first row) and both rows advanced.
        assert engine.stats.admissions == 2
        assert first.state.gen_len == 5
        assert late.state.gen_len == 1
        engine.drain()
        assert_generations_equal(
            [first.result, late.result],
            [
                model.generate(ragged_prompts[0], max_new_tokens=10),
                model.generate(ragged_prompts[1], max_new_tokens=5),
            ],
            context="no restart",
        )

    def test_early_retirement_frees_slot_for_queued_request(self, model, ragged_prompts):
        stopper = ragged_prompts[0]
        stop_token = int(np.argmax(model.next_token_log_probs(stopper)))
        engine = ContinuousBatchingEngine(model, max_batch_rows=2)
        h_stop = engine.submit(stopper, max_new_tokens=8, stop_ids={stop_token})
        h_long = engine.submit(ragged_prompts[1], max_new_tokens=8)
        h_queued = engine.submit(ragged_prompts[2], max_new_tokens=8)
        finished_first = engine.step()  # stopper retires on its first token
        assert finished_first == [h_stop]
        assert h_stop.finish_reason == "stop"
        assert len(h_stop.result) == len(stopper) + 1
        engine.step()  # freed slot refills with the queued request
        assert engine.stats.peak_rows == 2
        assert h_queued.state.admitted
        engine.drain()
        expected = [
            model.generate(stopper, max_new_tokens=8, stop_ids={stop_token}),
            model.generate(ragged_prompts[1], max_new_tokens=8),
            model.generate(ragged_prompts[2], max_new_tokens=8),
        ]
        assert_generations_equal(
            [h_stop.result, h_long.result, h_queued.result],
            expected,
            context="early retirement",
        )

    def test_per_request_budgets_and_temperatures_coexist(self, model, ragged_prompts):
        engine = ContinuousBatchingEngine(model, max_batch_rows=4, rng=7)
        greedy_a = engine.submit(ragged_prompts[0], max_new_tokens=4)
        sampled = engine.submit(ragged_prompts[1], max_new_tokens=9, temperature=0.8)
        greedy_b = engine.submit(ragged_prompts[2], max_new_tokens=6)
        engine.drain()
        # Greedy rows are unaffected by a sampling batchmate.
        assert_generations_equal(
            [greedy_a.result, greedy_b.result],
            [
                model.generate(ragged_prompts[0], max_new_tokens=4),
                model.generate(ragged_prompts[2], max_new_tokens=6),
            ],
            context="greedy rows beside sampling row",
        )
        extra = sampled.result[len(ragged_prompts[1]) :]
        assert 1 <= len(extra) <= 9
        assert extra.min() >= 0 and extra.max() < VOCAB

    def test_deadline_based_batch_closing(self, model, ragged_prompts):
        clock = ManualClock()
        engine = ContinuousBatchingEngine(
            model, max_batch_rows=4, admit_deadline=5.0, clock=clock
        )
        engine.submit(ragged_prompts[0], max_new_tokens=4)
        engine.submit(ragged_prompts[1], max_new_tokens=4)
        assert engine.step() == [] and engine.num_active == 0  # held for batchmates
        clock.advance(6.0)
        engine.step()
        assert engine.num_active == 2 and engine.stats.batch_sizes == [2]
        # A full batch closes immediately, deadline notwithstanding.
        engine2 = ContinuousBatchingEngine(
            model, max_batch_rows=2, admit_deadline=1000.0, clock=ManualClock()
        )
        engine2.submit(ragged_prompts[0], max_new_tokens=4)
        assert engine2.step() == [] and engine2.num_active == 0
        engine2.submit(ragged_prompts[1], max_new_tokens=4)
        engine2.step()
        assert engine2.num_active == 2
        # Once decoding runs, later arrivals are admitted without waiting.
        engine2.submit(ragged_prompts[2], max_new_tokens=4)
        finished = engine2.drain()
        assert len(finished) == 3 and engine2.stats.admissions == 2

    def test_admission_grouping_hold_is_bounded(self, model, ragged_prompts):
        """min_admit_rows may hold a straggler, but never until the batch drains."""
        engine = ContinuousBatchingEngine(model, max_batch_rows=3, min_admit_rows=2)
        for p in ragged_prompts[:2]:
            engine.submit(p, max_new_tokens=20)
        engine.step()
        straggler = engine.submit(ragged_prompts[2], max_new_tokens=3)
        held_steps = 0
        while not straggler.state.admitted and not straggler.done:
            engine.step()
            held_steps += 1
            assert held_steps <= engine.min_admit_rows + 1, "straggler starved"
        engine.drain()
        assert_generations_equal(
            [straggler.result],
            [model.generate(ragged_prompts[2], max_new_tokens=3)],
            context="held straggler",
        )

    def test_pool_peek_probes_without_side_effects(self, model):
        pool = PrefixCachePool(model, max_entries=4, min_reuse_tokens=8)
        prompt = np.arange(1, 21, dtype=np.int64)
        cache, _ = pool.checkout(prompt)
        with no_grad():
            model.forward_incremental(prompt[None, :], cache)
        pool.checkin(prompt, cache)
        stats_before = (pool.stats.hits, pool.stats.misses)
        assert pool.peek(prompt) == 20
        assert pool.peek(np.concatenate([prompt[:12], [40, 41]])) == 12
        assert pool.peek(prompt[:4]) == 0  # below the min-reuse floor
        assert len(pool) == 1
        assert (pool.stats.hits, pool.stats.misses) == stats_before

    def test_unstartable_requests_finish_without_rows(self, model, ragged_prompts):
        engine = ContinuousBatchingEngine(model, max_batch_rows=2)
        zero_budget = engine.submit(ragged_prompts[0], max_new_tokens=0)
        at_limit = engine.submit(
            np.ones(model.config.max_position, dtype=np.int64), max_new_tokens=4
        )
        normal = engine.submit(ragged_prompts[1], max_new_tokens=3)
        finished = engine.drain()
        assert [r.request_id for r in finished] == [0, 1, 2]
        assert zero_budget.finish_reason == "length"
        np.testing.assert_array_equal(zero_budget.result, ragged_prompts[0])
        assert at_limit.finish_reason == "context"
        assert len(at_limit.result) == model.config.max_position
        assert_generations_equal(
            [normal.result],
            [model.generate(ragged_prompts[1], max_new_tokens=3)],
            context="normal beside unstartable",
        )
        with pytest.raises(ValueError):
            engine.submit(np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            engine.submit(np.ones(model.config.max_position + 1, dtype=np.int64))

    def test_pool_prefill_reuse_keeps_outputs_identical(self, model, ragged_prompts):
        pool = PrefixCachePool(model, max_entries=4)
        engine = ContinuousBatchingEngine(model, max_batch_rows=2, cache_pool=pool)
        head = np.arange(1, 13, dtype=np.int64)
        first = np.concatenate([head, ragged_prompts[0]])
        second = np.concatenate([head, ragged_prompts[1]])
        h1 = engine.submit(first, max_new_tokens=5)
        engine.drain()
        h2 = engine.submit(second, max_new_tokens=5)
        engine.drain()
        assert h1.reused_tokens == 0 and h2.reused_tokens >= len(head)
        assert pool.stats.hits >= 1
        assert_generations_equal(
            [h1.result, h2.result],
            [
                model.generate(first, max_new_tokens=5),
                model.generate(second, max_new_tokens=5),
            ],
            context="pool-assisted admission",
        )

    def test_sla_stats_internally_consistent(self, model, ragged_prompts):
        engine = ContinuousBatchingEngine(
            model, max_batch_rows=3, clock=TickingClock()
        )
        handles = [engine.submit(p, max_new_tokens=n) for p, n in
                   zip(ragged_prompts[:6], (3, 8, 5, 2, 7, 4))]
        engine.step()
        handles.append(engine.submit(ragged_prompts[6], max_new_tokens=6))
        finished = engine.drain()
        assert len(finished) == 7 and all(r.done for r in finished)
        for request in finished:
            assert request.error is None
            assert request.queue_seconds >= 0
            assert request.prefill_seconds > 0
            assert request.decode_seconds >= 0
            # queue + prefill + decode accounts for the full wall time.
            assert (
                abs(
                    request.queue_seconds
                    + request.prefill_seconds
                    + request.decode_seconds
                    - request.wall_seconds
                )
                < 1e-9
            )
            assert request.decode_steps == len(request.result) - len(request.prompt_ids)
            prefill_done = request.admitted_at + request.prefill_seconds
            assert prefill_done <= request.first_token_at <= request.finished_at
            assert request.finish_reason in ("stop", "length", "context")
        stats = engine.stats
        assert stats.finished == 7
        assert len(stats.queue_seconds) == len(stats.prefill_seconds) == 7
        assert len(stats.ttft_seconds) == len(stats.decode_steps) == 7
        assert stats.row_steps >= stats.steps  # occupancy never below one row
        assert 0 < stats.mean_rows_per_step <= 3
        assert stats.peak_rows <= 3
        summary = stats.sla_summary()
        assert summary["requests"] == 7 and summary["peak_rows"] <= 3

    def test_engine_is_reusable_after_drain(self, model, ragged_prompts):
        engine = ContinuousBatchingEngine(model, max_batch_rows=2)
        first = engine.submit(ragged_prompts[0], max_new_tokens=4)
        engine.drain()
        assert not engine.has_work
        second = engine.submit(ragged_prompts[1], max_new_tokens=4)
        engine.drain()
        assert_generations_equal(
            [first.result, second.result],
            [
                model.generate(ragged_prompts[0], max_new_tokens=4),
                model.generate(ragged_prompts[1], max_new_tokens=4),
            ],
            context="reuse after drain",
        )


# ---------------------------------------------------------------------- #
# engine edge cases the async layer leans on
# ---------------------------------------------------------------------- #
class TestEngineEdgeCases:
    def test_step_on_an_empty_engine_is_a_noop(self, model):
        engine = ContinuousBatchingEngine(model, max_batch_rows=2)
        assert engine.step() == []
        assert engine.step(force_admit=True) == []
        assert engine.drain() == []
        assert engine.stats.steps == 0 and not engine.has_work
        assert engine.batch.num_rows == 0

    def test_cancel_queued_and_live_requests_reclaims_rows(self, model, ragged_prompts):
        engine = ContinuousBatchingEngine(model, max_batch_rows=2)
        live_a = engine.submit(ragged_prompts[0], max_new_tokens=8)
        live_b = engine.submit(ragged_prompts[1], max_new_tokens=8)
        queued = engine.submit(ragged_prompts[2], max_new_tokens=8)
        engine.step()  # a and b admitted; the third waits in the queue
        assert engine.batch.num_rows == 2 and engine.num_queued == 1

        # Queued cancel: removed without ever taking a row.
        assert engine.cancel(queued)
        assert queued.done and queued.finish_reason == "cancelled"
        np.testing.assert_array_equal(queued.result, ragged_prompts[2])
        assert engine.num_queued == 0

        # Live cancel: the row retires at the step boundary, KV reclaimed.
        assert engine.cancel(live_a)
        assert live_a.finish_reason == "cancelled"
        assert engine.batch.num_rows == 1
        assert engine.batch.cache.batch_size == 1
        reference_a = model.generate(ragged_prompts[0], max_new_tokens=8)
        np.testing.assert_array_equal(
            live_a.result, reference_a[: len(live_a.result)]
        )
        assert engine.stats.cancelled == 2

        # The survivor decodes to parity beside the retirements.
        engine.drain()
        assert_generations_equal(
            [live_b.result],
            [model.generate(ragged_prompts[1], max_new_tokens=8)],
            context="survivor of cancellations",
        )
        # Cancellation racing natural retirement is a no-op, not an error.
        assert engine.cancel(live_b) is False
        assert live_b.finish_reason == "length"

    def test_resubmission_after_drain_with_cancellations(self, model, ragged_prompts):
        engine = ContinuousBatchingEngine(model, max_batch_rows=2)
        doomed = engine.submit(ragged_prompts[0], max_new_tokens=6)
        engine.step()
        engine.cancel(doomed)
        engine.drain()
        assert not engine.has_work
        fresh = engine.submit(ragged_prompts[1], max_new_tokens=6)
        engine.drain()
        assert_generations_equal(
            [fresh.result],
            [model.generate(ragged_prompts[1], max_new_tokens=6)],
            context="resubmit after cancel + drain",
        )

    def test_zero_token_budget_requests_never_take_a_row(self, model, ragged_prompts):
        engine = ContinuousBatchingEngine(model, max_batch_rows=2)
        zero = engine.submit(ragged_prompts[0], max_new_tokens=0)
        sibling = engine.submit(ragged_prompts[1], max_new_tokens=3)
        finished = engine.step()
        assert zero in finished and zero.finish_reason == "length"
        assert zero.decode_steps == 0
        np.testing.assert_array_equal(zero.result, ragged_prompts[0])
        assert engine.batch.num_rows == 1  # only the sibling occupies a row
        engine.drain()
        assert_generations_equal(
            [sibling.result],
            [model.generate(ragged_prompts[1], max_new_tokens=3)],
            context="sibling of zero-budget request",
        )

    def test_cancelled_slot_refills_from_the_queue(self, model, ragged_prompts):
        engine = ContinuousBatchingEngine(model, max_batch_rows=2)
        hog = engine.submit(ragged_prompts[0], max_new_tokens=50)
        other = engine.submit(ragged_prompts[1], max_new_tokens=6)
        waiting = engine.submit(ragged_prompts[2], max_new_tokens=6)
        engine.step()
        assert not waiting.state.admitted
        engine.cancel(hog)
        engine.step()  # the freed slot admits the queued request
        assert waiting.state.admitted
        engine.drain()
        assert_generations_equal(
            [other.result, waiting.result],
            [
                model.generate(ragged_prompts[1], max_new_tokens=6),
                model.generate(ragged_prompts[2], max_new_tokens=6),
            ],
            context="refill after cancel",
        )
