"""Parity/property helpers shared by the optimised-inference test suites.

Optimised inference paths (KV caching, fused projections, left-padded
batching, pooled prefills) must not drift from the reference semantics:
robustness work on evaluation harnesses shows such drift creeps in silently
unless batched == sequential == uncached is pinned by tests.  These helpers
make those assertions one-liners with informative failure messages.
"""

from __future__ import annotations

import numpy as np

__all__ = ["assert_logits_close", "assert_generations_equal"]

#: Default tolerance: float32 accumulation-order differences only.
RTOL = 1e-5
ATOL = 1e-5


def _as_array(x) -> np.ndarray:
    """Accept plain arrays or Tensor-likes exposing ``.data``."""
    return np.asarray(getattr(x, "data", x))


def assert_logits_close(actual, expected, *, rtol: float = RTOL, atol: float = ATOL, context: str = "") -> None:
    """Assert two logit arrays agree to float32 tolerance.

    ``actual``/``expected`` may be NumPy arrays or Tensors.  On failure the
    message reports the largest absolute deviation and where it occurred.
    """
    a, e = _as_array(actual), _as_array(expected)
    assert a.shape == e.shape, (
        f"logit shape mismatch{f' ({context})' if context else ''}: "
        f"{a.shape} vs {e.shape}"
    )
    if not np.allclose(a, e, rtol=rtol, atol=atol):
        diff = np.abs(a - e)
        worst = np.unravel_index(int(np.argmax(diff)), diff.shape)
        raise AssertionError(
            f"logits diverge{f' ({context})' if context else ''}: "
            f"max |diff| = {diff.max():.3e} at index {worst} "
            f"(actual={a[worst]:.6f}, expected={e[worst]:.6f}, "
            f"rtol={rtol}, atol={atol})"
        )


def assert_generations_equal(actual, expected, *, context: str = "") -> None:
    """Assert two generation results hold exactly the same token sequences.

    Accepts single 1-D token arrays or sequences of them (one per prompt).
    Generation parity is *exact*: greedy decoding over allclose logits must
    pick identical tokens, so any mismatch signals a real semantic drift.
    """
    def _as_list(x):
        return [x] if isinstance(x, np.ndarray) and x.ndim == 1 else list(x)

    a_list, e_list = _as_list(actual), _as_list(expected)
    assert len(a_list) == len(e_list), (
        f"generation count mismatch{f' ({context})' if context else ''}: "
        f"{len(a_list)} vs {len(e_list)}"
    )
    for i, (a, e) in enumerate(zip(a_list, e_list)):
        a, e = np.asarray(a), np.asarray(e)
        if a.shape != e.shape or not np.array_equal(a, e):
            raise AssertionError(
                f"generation {i} differs{f' ({context})' if context else ''}:\n"
                f"  actual   ({len(a)} tokens): {a.tolist()}\n"
                f"  expected ({len(e)} tokens): {e.tolist()}"
            )
