"""Shared fixtures: a small dataset, tokenizer and registry reused across tests."""

from __future__ import annotations

import pytest

from repro.flowbench import generate_dataset
from repro.models.registry import ModelRegistry
from repro.tokenization import LogTokenizer


@pytest.fixture(scope="session")
def small_dataset():
    """A small 1000 Genome dataset (4 traces) shared by the test session."""
    return generate_dataset("1000genome", num_traces=4, seed=0)


@pytest.fixture(scope="session")
def montage_dataset():
    """A tiny Montage dataset (2 traces)."""
    return generate_dataset("montage", num_traces=2, seed=1)


@pytest.fixture(scope="session")
def tokenizer(small_dataset):
    """Tokenizer built from the small dataset's training sentences."""
    return LogTokenizer.build_from_corpus(small_dataset.train.sentences())


@pytest.fixture(scope="session")
def registry(tokenizer, small_dataset):
    """A registry with very light synthetic pre-training (fast)."""
    corpus = small_dataset.train.sentences()[:120]
    return ModelRegistry(tokenizer, corpus, pretrain_steps=3, seed=0)


@pytest.fixture(autouse=True)
def _sanitize_invariants():
    """Per-test concurrency/resource invariants under ``REPRO_SANITIZE=1``.

    When the runtime sanitizers are enabled (see ``docs/analysis.md``),
    every test must leave the process with (a) an acyclic lock-acquisition
    graph — a cycle is a latent deadlock even if this run never hung —
    and (b) no block-allocator growth that survives garbage collection:
    caches created by the test must have released every block reference.
    Disabled (the default), this fixture is a no-op.
    """
    from repro.analysis import sanitize

    if not sanitize.enabled():
        yield
        return
    import gc

    before = {s: s.blocks_in_use for s in sanitize.live_sanitizers()}
    yield
    gc.collect()
    sanitize.global_watcher().assert_acyclic()
    leaks = []
    for s in sanitize.live_sanitizers():
        baseline = before.get(s, 0)
        if s.blocks_in_use > baseline:
            leaks.append(s.leak_report(expected_in_use=baseline))
    if leaks:
        pytest.fail("BlockSanitizer leak(s):\n" + "\n".join(filter(None, leaks)))
