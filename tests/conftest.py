"""Shared fixtures: a small dataset, tokenizer and registry reused across tests."""

from __future__ import annotations

import pytest

from repro.flowbench import generate_dataset
from repro.models.registry import ModelRegistry
from repro.tokenization import LogTokenizer


@pytest.fixture(scope="session")
def small_dataset():
    """A small 1000 Genome dataset (4 traces) shared by the test session."""
    return generate_dataset("1000genome", num_traces=4, seed=0)


@pytest.fixture(scope="session")
def montage_dataset():
    """A tiny Montage dataset (2 traces)."""
    return generate_dataset("montage", num_traces=2, seed=1)


@pytest.fixture(scope="session")
def tokenizer(small_dataset):
    """Tokenizer built from the small dataset's training sentences."""
    return LogTokenizer.build_from_corpus(small_dataset.train.sentences())


@pytest.fixture(scope="session")
def registry(tokenizer, small_dataset):
    """A registry with very light synthetic pre-training (fast)."""
    corpus = small_dataset.train.sentences()[:120]
    return ModelRegistry(tokenizer, corpus, pretrain_steps=3, seed=0)
