"""RPR001 fixture: builtin ``hash()`` on a persisted key (seeded violation)."""

_CACHE = {}


def remember(ids) -> int:
    key = hash(ids.tobytes())
    _CACHE[key] = ids
    return key
