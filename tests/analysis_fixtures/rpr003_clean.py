"""RPR003 twin: lock-annotated global used under its lock, plus a
thread-local."""

import threading

_RESULTS_LOCK = threading.Lock()
_RESULTS: dict = {}  # guarded-by: _RESULTS_LOCK
_SCRATCH = threading.local()


def record(worker: threading.Thread, value) -> None:
    with _RESULTS_LOCK:
        _RESULTS[worker.name] = value


def scratch() -> list:
    if not hasattr(_SCRATCH, "items"):
        _SCRATCH.items = []
    return _SCRATCH.items
