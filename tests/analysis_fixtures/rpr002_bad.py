"""RPR002 fixture: guarded attribute touched without the lock."""

import threading


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: dict = {}  # guarded-by: self._lock

    def add(self, key, value) -> None:
        with self._lock:
            self._items[key] = value

    def size(self) -> int:
        return len(self._items)
