"""RPR005 twin: the table edit moves bookkeeping only; the unannotated
helper may copy freely."""

import numpy as np


class Table:
    def __init__(self) -> None:
        self.rows = np.zeros((4, 8))
        self.blocks: list = [[] for _ in range(4)]

    # table-edit
    def retire(self, keep) -> None:
        self.blocks = [self.blocks[i] for i in keep]

    def snapshot(self) -> np.ndarray:
        return self.rows.copy()
