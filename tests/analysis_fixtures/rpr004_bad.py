"""RPR004 fixture: a serving constructor growing a bare option beside
EngineConfig."""


class EngineConfig:
    pass


class ToyEngine:
    def __init__(self, model, *, config=None, shiny_new_knob: int = 3) -> None:
        self.model = model
        self.config = config or EngineConfig()
        self.shiny_new_knob = shiny_new_knob
