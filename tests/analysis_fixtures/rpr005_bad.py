"""RPR005 fixture: array copies inside a ``# table-edit`` function."""

import numpy as np


class Table:
    def __init__(self) -> None:
        self.rows = np.zeros((4, 8))
        self.blocks: list = [[] for _ in range(4)]

    # table-edit
    def retire(self, keep) -> None:
        self.rows = np.concatenate([self.rows[i : i + 1] for i in keep])
        self.blocks = [list(self.blocks[i]).copy() for i in keep]
