"""RPR003 fixture: bare mutable module global in a thread-shared module."""

import threading

_RESULTS: dict = {}


def record(worker: threading.Thread, value) -> None:
    _RESULTS[worker.name] = value
