"""RPR001 twin: process-stable digests (and one justified inline allow)."""

import hashlib
import zlib

_CACHE = {}


def remember(ids) -> int:
    key = int.from_bytes(hashlib.blake2b(ids.tobytes(), digest_size=8).digest(), "big")
    _CACHE[key] = ids
    return key


def checksum(payload: bytes) -> int:
    return zlib.crc32(payload)


def ephemeral_bucket(token: str) -> int:
    # In-process only, never persisted or compared across processes.
    return hash(token) % 8  # lint: allow RPR001
