"""RPR002 twin: every touch under the lock, a caller-holds-lock helper,
and a Condition aliasing the same lock."""

import threading


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._items: dict = {}  # guarded-by: self._lock

    def add(self, key, value) -> None:
        with self._lock:
            self._items[key] = value

    def add_and_wake(self, key, value) -> None:
        with self._ready:  # Condition shares self._lock
            self._items[key] = value
            self._ready.notify_all()

    def size(self) -> int:
        with self._lock:
            return self._count()

    def _count(self) -> int:  # guarded-by: self._lock
        return len(self._items)
