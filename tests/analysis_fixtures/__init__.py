"""Seeded-violation fixtures for the repro.analysis lint rules.

Each ``rprNNN_bad.py`` trips exactly its rule; the ``rprNNN_clean.py``
twin exercises the same shape without violating it.  These files are lint
*inputs*, never imported by tests (some would be unsafe to run).
"""
