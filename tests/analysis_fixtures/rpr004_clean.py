"""RPR004 twin: new options ride in EngineConfig; only infra params are
bare."""


class EngineConfig:
    shiny_new_knob: int = 3


class ToyEngine:
    def __init__(self, model, *, config=None, cache_pool=None, clock=None) -> None:
        self.model = model
        self.config = config or EngineConfig()
        self.cache_pool = cache_pool
        self.clock = clock
