"""Tests for :mod:`repro.analysis` — lint rules, CLI/baseline workflow,
and the runtime sanitizers.

The lint half runs the real rules over the seeded-violation fixtures in
``tests/analysis_fixtures/`` (each ``*_bad.py`` must trip exactly its
rule, each ``*_clean.py`` twin must pass) and self-checks the repo's own
``src/`` tree against the committed baseline.  The sanitizer half builds
private watchers/allocators, so it runs identically with or without
``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.cli import main
from repro.analysis.lint import SourceFile, run_paths
from repro.analysis.rules import all_rules
from repro.analysis.sanitize import (
    BlockAuditError,
    LockOrderWatcher,
    block_sanitizer_class,
    enabled,
    live_sanitizers,
    maybe_watch_lock,
)

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).parents[1]
RULE_IDS = ["RPR001", "RPR002", "RPR003", "RPR004", "RPR005"]


# ---------------------------------------------------------------------- #
# rules over fixtures
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_trips_exactly_its_rule(rule_id):
    path = FIXTURES / f"{rule_id.lower()}_bad.py"
    findings, errors = run_paths([path], all_rules())
    assert not errors
    assert findings, f"{path} should trip {rule_id}"
    assert {f.rule for f in findings} == {rule_id}


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_clean_twin_passes(rule_id):
    path = FIXTURES / f"{rule_id.lower()}_clean.py"
    findings, errors = run_paths([path], all_rules())
    assert not errors
    assert findings == [], [f.message for f in findings]


def test_fingerprint_is_line_number_free():
    text = (FIXTURES / "rpr001_bad.py").read_text(encoding="utf-8")
    original, _ = run_paths([FIXTURES / "rpr001_bad.py"], all_rules())
    shifted = SourceFile("tests/analysis_fixtures/rpr001_bad.py", "\n\n\n" + text)
    moved = [
        f
        for rule in all_rules()
        for f in rule.check(shifted)
        if f.rule == "RPR001"
    ]
    assert {f.fingerprint for f in original} == {f.fingerprint for f in moved}
    assert {f.line for f in original} != {f.line for f in moved}


def test_rule_catalogue_complete():
    assert [rule.id for rule in all_rules()] == RULE_IDS


# ---------------------------------------------------------------------- #
# CLI and baseline workflow
# ---------------------------------------------------------------------- #
def test_cli_exit_codes(capsys):
    assert main([str(FIXTURES / "rpr001_bad.py"), "--no-baseline"]) == 1
    assert main([str(FIXTURES / "rpr001_clean.py"), "--no-baseline"]) == 0
    capsys.readouterr()


def test_cli_json_report(capsys):
    code = main([str(FIXTURES / "rpr002_bad.py"), "--no-baseline", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "RPR002"
    assert payload["findings"][0]["fingerprint"]


def test_cli_rule_selection(capsys):
    code = main(
        [str(FIXTURES / "rpr001_bad.py"), "--no-baseline", "--rules", "RPR002"]
    )
    assert code == 0  # RPR001 violation invisible when only RPR002 runs
    capsys.readouterr()


def test_cli_check_refuses_write_baseline():
    with pytest.raises(SystemExit) as excinfo:
        main(["--check", "--write-baseline"])
    assert excinfo.value.code == 2


def test_baseline_roundtrip(tmp_path, capsys):
    bad = str(FIXTURES / "rpr003_bad.py")
    baseline = tmp_path / "baseline.json"
    assert main([bad, "--write-baseline", "--baseline", str(baseline)]) == 0
    assert main([bad, "--baseline", str(baseline)]) == 0
    # Justifications survive a re-absorb.
    loaded = Baseline.load(baseline)
    entry = next(iter(loaded.entries.values()))
    entry["justification"] = "kept on purpose"
    loaded.save(baseline)
    assert main([bad, "--write-baseline", "--baseline", str(baseline)]) == 0
    reloaded = Baseline.load(baseline)
    assert [e["justification"] for e in reloaded.entries.values()] == [
        "kept on purpose"
    ]
    capsys.readouterr()


def test_stale_baseline_warns_without_failing(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "fingerprint": "feedfeedfeed",
                        "rule": "RPR001",
                        "path": "gone.py",
                        "justification": "the violation was fixed",
                    }
                ],
            }
        ),
        encoding="utf-8",
    )
    code = main(
        [str(FIXTURES / "rpr001_clean.py"), "--baseline", str(baseline)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "stale baseline entry feedfeedfeed" in out


def test_src_tree_clean_under_committed_baseline(capsys):
    code = main(
        [
            str(REPO_ROOT / "src"),
            "--check",
            "--baseline",
            str(REPO_ROOT / "analysis-baseline.json"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out


def test_syntax_error_reported_as_error(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def nope(:\n", encoding="utf-8")
    assert main([str(broken), "--no-baseline"]) == 1
    assert "error:" in capsys.readouterr().out


# ---------------------------------------------------------------------- #
# LockOrderWatcher
# ---------------------------------------------------------------------- #
def test_lock_order_cycle_detected():
    watcher = LockOrderWatcher()
    a = watcher.wrap("A", threading.Lock())
    b = watcher.wrap("B", threading.Lock())
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    cycle = watcher.find_cycle()
    assert cycle is not None and set(cycle) >= {"A", "B"}
    with pytest.raises(AssertionError, match="lock-order cycle"):
        watcher.assert_acyclic()
    watcher.reset()
    watcher.assert_acyclic()


def test_consistent_lock_order_is_acyclic():
    watcher = LockOrderWatcher()
    a = watcher.wrap("A", threading.Lock())
    b = watcher.wrap("B", threading.Lock())
    c = watcher.wrap("C", threading.Lock())
    for _ in range(3):
        with a, b, c:
            pass
    watcher.assert_acyclic()
    assert set(watcher.edges) == {("A", "B"), ("A", "C"), ("B", "C")}


def test_reentrant_and_same_role_locks_make_no_edges():
    watcher = LockOrderWatcher()
    r = watcher.wrap("R", threading.RLock())
    sibling = watcher.wrap("R", threading.Lock())
    with r:
        with r:
            with sibling:
                pass
    assert watcher.edges == {}
    watcher.assert_acyclic()


def test_condition_on_watched_lock_wait_notify():
    watcher = LockOrderWatcher()
    cond = threading.Condition(watcher.wrap("cv", threading.Lock()))
    ready: list[int] = []

    def waiter() -> None:
        with cond:
            while not ready:
                cond.wait(timeout=5.0)

    thread = threading.Thread(target=waiter)
    thread.start()
    with cond:
        ready.append(1)
        cond.notify_all()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    # The main thread's held-lock stack unwound cleanly through wait().
    assert watcher._stack() == []


def test_maybe_watch_lock_gating(monkeypatch):
    lock = threading.Lock()
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not enabled()
    assert maybe_watch_lock("x", lock) is lock
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert enabled()
    wrapped = maybe_watch_lock("x", lock)
    assert wrapped is not lock and wrapped.role == "x"
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not enabled()


# ---------------------------------------------------------------------- #
# BlockSanitizer
# ---------------------------------------------------------------------- #
@pytest.fixture
def sanitizer():
    cls = block_sanitizer_class()
    return cls(num_heads=1, head_dim=2, block_size=4, initial_blocks=2)


def test_sanitizer_clean_lifecycle(sanitizer):
    block = sanitizer.alloc()
    sanitizer.incref([block])
    sanitizer.decref([block])
    sanitizer.decref([block])
    assert sanitizer.blocks_in_use == 0
    assert sanitizer.leak_report() is None
    assert any(s is sanitizer for s in live_sanitizers())


def test_sanitizer_catches_double_free(sanitizer):
    block = sanitizer.alloc()
    sanitizer.decref([block])
    with pytest.raises(BlockAuditError, match="double-free"):
        sanitizer.decref([block])
    assert sanitizer.blocks_in_use == 0


def test_sanitizer_catches_use_after_free(sanitizer):
    block = sanitizer.alloc()
    k = np.zeros((1, 2, 2), dtype=np.float32)
    sanitizer.write(block, 0, k, k)
    sanitizer.decref([block])
    with pytest.raises(BlockAuditError, match="use-after-free"):
        sanitizer.write(block, 0, k, k)
    assert sanitizer.blocks_in_use == 0


def test_sanitizer_leak_report_names_call_site(sanitizer):
    block = sanitizer.alloc()
    report = sanitizer.leak_report()
    assert report is not None
    assert "1 leaked block" in report
    assert "alloc at" in report and "test_analysis.py" in report
    assert sanitizer.leak_report(expected_in_use=1) is None
    sanitizer.decref([block])
    assert sanitizer.leak_report() is None


def test_sanitizer_import_export_roundtrip(sanitizer):
    k = np.arange(12, dtype=np.float32).reshape(1, 6, 2)
    v = k + 100.0
    table = sanitizer.import_table(k, v)
    out_k, out_v, _, _ = sanitizer.export_table(table, 6)
    np.testing.assert_array_equal(out_k, k)
    np.testing.assert_array_equal(out_v, v)
    sanitizer.decref(table)
    assert sanitizer.blocks_in_use == 0
    assert sanitizer.leak_report() is None


def test_sanitizer_is_a_block_allocator(sanitizer):
    from repro.nn.paged import BlockAllocator

    assert isinstance(sanitizer, BlockAllocator)
