#!/usr/bin/env python3
"""Quickstart: fine-tune a pre-trained encoder LLM to detect workflow anomalies.

This is the three-call workflow the paper targets at system administrators:

1. generate (or load) labeled workflow-log sentences,
2. ``WorkflowAnomalyDetector.from_pretrained(...)`` + ``fit``,
3. ``predict`` / ``evaluate`` on new logs.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import WorkflowAnomalyDetector, generate_dataset
from repro.models import default_registry


def main() -> None:
    # 1. A Flow-Bench-style dataset of the 1000 Genome workflow: simulated
    #    executions with injected CPU/HDD anomalies, parsed into sentences.
    print("Generating 1000 Genome dataset (simulated executions)...")
    dataset = generate_dataset("1000genome", num_traces=8, seed=0)
    for row in dataset.statistics():
        print(f"  {row['split']:<11s} normal={row['num_normal']:>5d} "
              f"anomalous={row['num_anomalous']:>5d} fraction={row['anomaly_fraction']:.3f}")

    # 2. Load a (synthetically) pre-trained checkpoint and fine-tune it.
    print("\nLoading pre-trained model and fine-tuning (SFT)...")
    registry = default_registry(pretrain_steps=20)
    detector = WorkflowAnomalyDetector.from_pretrained(
        "distilbert-base-uncased", registry=registry
    )
    detector.fit_split(dataset.train.subsample(800, rng=0), dataset.validation.subsample(200, rng=1))

    # 3. Detect anomalies in unseen logs.
    report = detector.evaluate_split(dataset.test)
    print(f"\nTest metrics: accuracy={report.accuracy:.3f} precision={report.precision:.3f} "
          f"recall={report.recall:.3f} f1={report.f1:.3f}")

    sample = dataset.test.records[:5]
    predictions = detector.predict_records(sample)
    print("\nSample predictions:")
    for record, label in zip(sample, predictions):
        verdict = "ANOMALOUS" if label else "normal"
        truth = "ANOMALOUS" if record.label else "normal"
        print(f"  job={record.job_name:<28s} predicted={verdict:<9s} true={truth}")


if __name__ == "__main__":
    main()
