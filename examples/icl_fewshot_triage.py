#!/usr/bin/env python3
"""Few-shot anomaly triage with in-context learning (paper Table III / Fig. 13).

Scenario: an operations team has only a handful of labeled jobs.  Instead of
fine-tuning an encoder, a causal LM is *prompted* with those examples; a
chain-of-thought prompt additionally produces a human-readable rationale for
each decision.  The script also shows the quantization + LoRA fine-tuning
step that lifts accuracy when a few hundred labels are available.

Run:  python examples/icl_fewshot_triage.py
"""

from __future__ import annotations

from repro import generate_dataset
from repro.icl import (
    ChainOfThoughtExplainer,
    FewShotSelector,
    ICLEngine,
    ICLFineTuneConfig,
    ICLFineTuner,
)
from repro.models import default_registry


def main() -> None:
    dataset = generate_dataset("1000genome", num_traces=6, seed=5)
    registry = default_registry(pretrain_steps=20)
    model = registry.load_decoder("mistral-7b")
    engine = ICLEngine(model, registry.tokenizer)
    test = dataset.test.subsample(100, rng=0)

    # --- zero-shot and few-shot prompting ----------------------------------
    selector = FewShotSelector(dataset.train.records[:400], mode="mixed", seed=0)
    zero_shot = engine.evaluate(test.records, test.labels(), num_examples=0)
    few_shot = engine.evaluate(test.records, test.labels(), selector=selector, num_examples=5)
    print(f"zero-shot accuracy:            {zero_shot.accuracy:.3f}")
    print(f"few-shot accuracy (5 mixed):   {few_shot.accuracy:.3f}")

    # --- parameter-efficient fine-tuning (quantization + LoRA) -------------
    tuner = ICLFineTuner(model, registry.tokenizer, ICLFineTuneConfig(epochs=4, seed=0))
    result = tuner.finetune_split(dataset.train, max_records=600)
    print(f"\nLoRA fine-tuning: {result.parameter_summary} "
          f"({result.train_time_seconds:.1f}s, final loss {result.losses[-1]:.3f})")
    tuned = engine.evaluate(test.records, test.labels(), num_examples=0)
    print(f"fine-tuned accuracy:           {tuned.accuracy:.3f}")

    # --- chain-of-thought rationale for one job ----------------------------
    explainer = ChainOfThoughtExplainer(engine, dataset.train.records[:600])
    query = next(r for r in test.records if r.label == 1)
    explanation = explainer.explain(query, selector.select(4))
    print("\n--- Chain-of-thought rationale ------------------------------------")
    print(explanation.text())
    print(f"\ntrue label: {'Abnormal' if query.label else 'Normal'}, "
          f"model verdict: {explanation.category}")


if __name__ == "__main__":
    main()
