#!/usr/bin/env python3
"""Online (real-time) anomaly detection as job features stream in (paper Fig. 7/8).

A fine-tuned SFT model re-classifies each job every time a new log field
arrives, so performance anomalies can be flagged before the job finishes.
The script also reports the early-detection histogram: at which feature each
test job was first classified correctly — and repeats the streaming view
with the prompted (ICL) detector, whose prefix KV cache means each
re-classification only pays for the newly arrived feature tokens.

Run:  python examples/online_streaming_detection.py
"""

from __future__ import annotations

from repro import WorkflowAnomalyDetector, generate_dataset
from repro.detection import ICLStreamingDetector
from repro.icl import ICLEngine
from repro.models import default_registry


def main() -> None:
    dataset = generate_dataset("1000genome", num_traces=6, seed=3)
    registry = default_registry(pretrain_steps=20)
    detector = WorkflowAnomalyDetector.from_pretrained("bert-base-uncased", registry=registry)
    detector.fit_split(dataset.train.subsample(800, rng=0))

    # --- Fig. 7 style streaming view of one anomalous job ------------------
    anomalous_job = next(r for r in dataset.test.records if r.label == 1)
    print(f"Streaming job {anomalous_job.job_name} (injected anomaly: {anomalous_job.anomaly_type})\n")
    for prediction in detector.stream(anomalous_job):
        print(f"T{prediction.step}: {prediction.sentence}")
        print(f"  ==> label: {prediction.label_name}, score: {prediction.score:.4f}")
    final = detector.stream(anomalous_job)[-1]
    print(f"\nFinal verdict: {'ANOMALOUS' if final.label else 'normal'}")

    # --- Fig. 8 style early-detection histogram ----------------------------
    records = dataset.test.subsample(150, rng=1).records
    stats = detector.early_detection(records)
    print("\nEarly detection histogram (first feature at which the prediction is correct):")
    for feature, count in stats.as_series():
        bar = "#" * int(40 * count / max(stats.total_jobs, 1))
        print(f"  {feature:<18s} {count:>4d} {bar}")
    print(f"  {'never detected':<18s} {stats.never_detected:>4d}")
    print(f"\n{100 * stats.fraction_detected_by('runtime'):.1f}% of jobs are classified "
          "correctly by the time the runtime is known.")

    # --- The same stream, classified by a prompted decoder LM --------------
    # Each step's prompt extends the previous one, so the detector's prefix
    # KV cache only forwards the newly arrived feature tokens.
    engine = ICLEngine(registry.load_decoder("gpt2").eval(), registry.tokenizer)
    icl_detector = ICLStreamingDetector(engine)
    print(f"\nICL (zero-shot, prefix-cached) stream of job {anomalous_job.job_name}:")
    for prediction in icl_detector.stream(anomalous_job):
        print(f"T{prediction.step}: +{prediction.latest_feature} "
              f"==> {prediction.label_name} (score {prediction.score:.4f})")


if __name__ == "__main__":
    main()
