#!/usr/bin/env python3
"""Transfer learning across workflows (paper Fig. 10 / Fig. 11 / Table II).

A model fine-tuned on one workflow (1000 Genome) is applied to another
(Montage): first without adaptation, then with target-domain fine-tuning on a
growing fraction of Montage labels, and finally with the backbone frozen to
avoid catastrophically forgetting the source workflow.

Run:  python examples/transfer_across_workflows.py
"""

from __future__ import annotations

from repro import generate_dataset
from repro.models import default_registry
from repro.training import (
    SFTTrainer,
    TrainingConfig,
    finetune_on_target,
    freeze_for_transfer,
)


def main() -> None:
    registry = default_registry(pretrain_steps=20)
    genome = generate_dataset("1000genome", num_traces=6, seed=0)
    montage = generate_dataset("montage", num_traces=3, seed=1)

    # --- source model on 1000 Genome ---------------------------------------
    model = registry.load_encoder("bert-base-uncased")
    trainer = SFTTrainer(model, registry.tokenizer, TrainingConfig(epochs=3, max_length=40, seed=0))
    source_train = genome.train.subsample(700, rng=0)
    trainer.fit(source_train.sentences(), source_train.labels())
    print(f"in-domain accuracy  (1000 Genome test): "
          f"{trainer.evaluate_split(genome.test).accuracy:.3f}")
    print(f"zero-shot transfer  (Montage test):     "
          f"{trainer.evaluate_split(montage.test).accuracy:.3f}")

    # --- Fig. 11: fine-tune on growing fractions of Montage ----------------
    rows = finetune_on_target(
        trainer,
        montage.train.subsample(800, rng=1),
        montage.test.subsample(500, rng=2),
        fractions=(0.0, 0.25, 0.5, 1.0),
        epochs_per_stage=1,
    )
    print("\nAccuracy on Montage vs fraction of Montage training data used:")
    for row in rows:
        print(f"  {int(row['fraction'] * 100):>3d}%  accuracy={row['accuracy']:.3f}  f1={row['f1']:.3f}")

    # --- Table II: freeze the backbone to avoid catastrophic forgetting ----
    counts = freeze_for_transfer(trainer.model, "linear")
    print(f"\nFreezing backbone: {counts['trainable']:,} of {counts['total']:,} parameters trainable")
    montage_train = montage.train.subsample(400, rng=3)
    head_trainer = SFTTrainer(trainer.model, registry.tokenizer,
                              TrainingConfig(epochs=2, max_length=40, seed=1))
    head_trainer.fit(montage_train.sentences(), montage_train.labels())
    print(f"after head-only adaptation on Montage:")
    print(f"  accuracy on 1000 Genome (retained): {head_trainer.evaluate_split(genome.test).accuracy:.3f}")
    print(f"  accuracy on Montage (adapted):      {head_trainer.evaluate_split(montage.test).accuracy:.3f}")


if __name__ == "__main__":
    main()
