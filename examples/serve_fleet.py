#!/usr/bin/env python3
"""Replica-fleet demo: data-parallel serving with prefix-affinity routing.

Spins up a :class:`~repro.serving.ReplicaFleet` — N worker processes,
each owning a full replica (model, block allocator, prefix pool,
continuous-batching engine) — and drives it the way a multi-tenant
deployment would:

1. repeat traffic from several prompt *families* (shared template heads
   + fresh per-request tails) is submitted in passes; affinity routing
   digests each prompt's head and pins the family to the replica that
   already holds its pooled KV blocks, so later passes skip the head
   prefill entirely;
2. the same trace is replayed under round-robin routing, which scatters
   every family across all replicas — each pass re-prefills the head on
   a cold pool somewhere;
3. one family's pooled prefix is *migrated* between workers over the
   ``RKV1`` serialization format (bit-identical bytes, int8-safe) and
   the family re-pins to the receiving replica;
4. per-worker engine/pool stats and the router's placement counters are
   printed.

Run:  PYTHONPATH=src python examples/serve_fleet.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.flowbench import generate_dataset
from repro.models import DecoderLM, get_config
from repro.serving import ReplicaFleet
from repro.tokenization import LogTokenizer

NUM_WORKERS = 2
# Odd family count: round-robin then rotates each family across both
# workers pass to pass (an even count would accidentally pin).
NUM_FAMILIES = 3
PASSES = 3
HEAD_TOKENS = 48
MAX_NEW_TOKENS = 12
AFFINITY_TOKENS = 32


def build_model() -> DecoderLM:
    """Deterministic replica builder — every worker rebuilds this exact
    model (module-level so it pickles into the worker processes)."""
    dataset = generate_dataset("1000genome", num_traces=2, seed=0)
    tokenizer = LogTokenizer.build_from_corpus(dataset.train.sentences())
    model = DecoderLM(get_config("gpt2"), tokenizer.vocab_size, rng=0)
    model.eval()
    return model


def build_trace() -> list[list[np.ndarray]]:
    """Repeat traffic: each pass re-visits every family with a fresh tail."""
    dataset = generate_dataset("1000genome", num_traces=2, seed=0)
    tokenizer = LogTokenizer.build_from_corpus(dataset.train.sentences())
    sentences = dataset.train.sentences()
    rng = np.random.default_rng(3)
    heads = [
        tokenizer.encode_causal(" ".join(sentences[f::NUM_FAMILIES]))[:HEAD_TOKENS]
        for f in range(NUM_FAMILIES)
    ]
    return [
        [
            np.concatenate(
                [heads[f], tokenizer.encode_causal(sentences[int(rng.integers(len(sentences)))])[: int(rng.integers(3, 8))]]
            )
            for f in range(NUM_FAMILIES)
        ]
        for _ in range(PASSES)
    ]


def serve(routing: str, passes: list[list[np.ndarray]]) -> None:
    with ReplicaFleet(
        build_model,
        NUM_WORKERS,
        routing=routing,
        affinity_tokens=AFFINITY_TOKENS,
        engine_kwargs={"max_batch_rows": 4},
        pool_kwargs={"max_entries": 4},
    ) as fleet:
        t0 = time.perf_counter()
        tokens = 0
        for wave in passes:
            handles = [fleet.submit(p, MAX_NEW_TOKENS) for p in wave]
            fleet.drain()
            tokens += sum(len(h.result) - len(p) for h, p in zip(handles, wave))
        wall = time.perf_counter() - t0

        stats = fleet.worker_stats()
        hits = sum(w["pool"]["hits"] for w in stats)
        lookups = hits + sum(w["pool"]["misses"] for w in stats)
        print(f"\n{routing} routing: {tokens} tokens in {wall:.2f}s "
              f"({tokens / wall:.1f} tok/s), fleet-wide pool hit rate "
              f"{hits / max(1, lookups):.2f}")
        for i, w in enumerate(stats):
            print(f"  worker {i}: {w['finished']} requests, "
                  f"pool hits={w['pool']['hits']} misses={w['pool']['misses']} "
                  f"entries={w['pool_entries']}")
        rs = fleet.stats
        print(f"  router: pinned={rs.affinity_pinned} new={rs.affinity_new} "
              f"spills={rs.affinity_spills} round_robin={rs.round_robin}")

        if routing == "affinity":
            # Migrate one family's warm prefix to the other worker: the
            # pooled entry serializes to RKV1 bytes, installs on the
            # receiver, and the family re-pins there.
            prompt = passes[0][0]
            src = fleet.pinned_worker(prompt)
            dst = (src + 1) % NUM_WORKERS
            moved = fleet.migrate_prefix(prompt, src, dst)
            follow_up = fleet.submit(passes[-1][0], MAX_NEW_TOKENS)
            fleet.drain()
            print(f"  migrated family 0's {moved}-token prefix "
                  f"worker {src} -> {dst}; follow-up served by worker "
                  f"{follow_up.worker} reusing {follow_up.reused_tokens} tokens")


def main() -> None:
    print(f"Building trace: {NUM_FAMILIES} prompt families x {PASSES} passes, "
          f"{HEAD_TOKENS}-token shared heads, {NUM_WORKERS} workers...")
    passes = build_trace()
    serve("affinity", passes)
    serve("round_robin", passes)
    print("\nAffinity keeps each family's KV resident on one replica — the "
          "hit-rate gap above is the routed win.")


if __name__ == "__main__":
    main()
