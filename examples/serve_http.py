#!/usr/bin/env python3
"""HTTP serving demo: the production front end over the async engine.

Boots an :class:`~repro.serving.HttpServer` (stdlib-asyncio HTTP/1.1 +
Server-Sent Events over :class:`~repro.serving.AsyncEngine`) on an
ephemeral port and drives it with raw-socket clients, the way the open-loop
``http_serving`` benchmark does:

1. a mixed fleet of clients POSTs ``/v1/generate`` — most unary JSON, a few
   SSE streams consumed token by token as they decode;
2. clients carry *priorities*: a burst of high-priority requests arrives
   while low-priority decodes hold every batch row, and the engine preempts
   a low-priority row to its prefix-pool entry (pinned against eviction),
   admits the urgent work, then resumes the victim from its cached KV —
   greedy output token-identical to an uninterrupted run;
3. one chatty tenant blows through its token-bucket rate limit and a
   client burst past ``max_inflight`` gets load-shed — both see ``429``
   with an honest ``Retry-After``;
4. ``/metrics`` is scraped and the Prometheus text (engine SLA timings,
   preemption/resume counters, pool pins, HTTP shed counts) is printed.

Run:  PYTHONPATH=src python examples/serve_http.py
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np

from repro.flowbench import generate_dataset
from repro.models import DecoderLM, get_config
from repro.serving import AsyncEngine, EngineConfig, HttpServer
from repro.tokenization import LogTokenizer

NUM_CLIENTS = 12
MAX_NEW_TOKENS = 24


def build_model() -> tuple[DecoderLM, list[np.ndarray]]:
    dataset = generate_dataset("1000genome", num_traces=2, seed=0)
    tokenizer = LogTokenizer.build_from_corpus(dataset.train.sentences())
    model = DecoderLM(get_config("gpt2"), tokenizer.vocab_size, rng=0)
    model.eval()
    sentences = dataset.train.sentences()
    rng = np.random.default_rng(7)
    prompts = [
        tokenizer.encode_causal(sentences[i % len(sentences)])[
            : int(rng.integers(6, 20))
        ]
        for i in range(NUM_CLIENTS)
    ]
    return model, prompts


async def http_call(host: str, port: int, method: str, path: str, body: dict | None):
    """One raw HTTP/1.1 exchange (Connection: close) — returns (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header, _, body_bytes = raw.partition(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    return status, body_bytes


async def sse_call(host: str, port: int, body: dict) -> list[int]:
    """POST /v1/generate with stream=true; collect tokens frame by frame."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps({**body, "stream": True}).encode()
    head = (
        f"POST /v1/generate HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    tokens: list[int] = []
    while True:
        line = await reader.readline()
        if not line:
            break
        text = line.decode().strip()
        if not text.startswith("data: ") or text == "data: [DONE]":
            continue
        frame = json.loads(text[len("data: ") :])
        if "token" in frame:
            tokens.append(frame["token"])
    writer.close()
    await writer.wait_closed()
    return tokens


async def demo(server: HttpServer, prompts: list[np.ndarray]) -> None:
    host, port = server.host, server.port

    async def unary(i: int, priority: int, tenant: str | None = None):
        t0 = time.perf_counter()
        status, body = await http_call(
            host,
            port,
            "POST",
            "/v1/generate",
            {
                "prompt_ids": [int(t) for t in prompts[i]],
                "max_new_tokens": MAX_NEW_TOKENS,
                "priority": priority,
                # Each demo client is its own tenant so the per-tenant
                # bucket only trips for the deliberately chatty one.
                "tenant": tenant or f"client-{i}",
            },
        )
        wall = (time.perf_counter() - t0) * 1000
        if status == 200:
            n = len(json.loads(body)["generated"])
            print(f"  client {i:>2d} (prio {priority:+d}): {n} tokens ({wall:6.1f} ms)")
        else:
            err = json.loads(body)["error"]
            print(f"  client {i:>2d} (prio {priority:+d}): HTTP {status} — "
                  f"{err['message']} (retry_after={err.get('retry_after')})")

    # Low-priority workload first, then a high-priority burst that preempts.
    low = [asyncio.create_task(unary(i, 0)) for i in range(4)]
    await asyncio.sleep(0.05)
    high = [asyncio.create_task(unary(i, 5)) for i in range(4, 8)]

    # One client streams over SSE while the batch churns.
    tokens = await sse_call(
        host, port,
        {
            "prompt_ids": [int(t) for t in prompts[8]],
            "max_new_tokens": MAX_NEW_TOKENS,
            "tenant": "streamer",
        },
    )
    print(f"  client  8 (stream) : {len(tokens)} tokens via SSE")
    await asyncio.gather(*low, *high)

    # A chatty tenant trips its rate limit.
    print("\nRate-limited tenant (3 rapid requests, limit 1 req/s):")
    for _ in range(3):
        await unary(9, 0, tenant="chatty")

    status, body = await http_call(host, port, "GET", "/metrics", None)
    print(f"\n/metrics ({status}):")
    wanted = ("preempt", "resume", "shed", "rate_limited", "pinned", "ttft")
    for line in body.decode().splitlines():
        if not line.startswith("#") and any(key in line for key in wanted):
            print(f"  {line}")


def main() -> None:
    print("Building model and prompts...")
    model, prompts = build_model()

    config = EngineConfig(max_batch_rows=4, kv_layout="paged")
    engine = AsyncEngine(model, config=config)
    print(f"\nServing over HTTP (config: {config.to_json()}):")

    async def run() -> None:
        async with HttpServer(
            engine, max_inflight=32, rate_limit=1.0, rate_burst=1.0
        ) as server:
            print(f"  listening on {server.address}\n")
            await demo(server, prompts)

    asyncio.run(run())
    engine.shutdown(drain=True)

    sla = engine.stats.sla_summary()
    print(f"\nEngine: {sla['requests']} requests, "
          f"preemptions={sla['preemptions']} resumes={sla['resumes']}, "
          f"mean TTFT {sla['mean_ttft_seconds'] * 1000:.1f} ms")


if __name__ == "__main__":
    main()
