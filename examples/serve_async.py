#!/usr/bin/env python3
"""Async serving demo: concurrent clients over the continuous-batching engine.

Spins up an :class:`~repro.serving.AsyncEngine` (a background stepping
thread over the iteration-level decode engine) and drives it the way a
serving deployment would:

1. sixteen asyncio clients submit generation requests with staggered,
   Poisson-ish arrivals — each is admitted into the *running* batch at the
   next step boundary;
2. one client consumes its generation token by token through the async
   stream API while the others run;
3. one request is cancelled mid-decode and one carries a tight timeout —
   both retire at a step boundary and their KV rows are reclaimed;
4. one client brings a *long* prompt (~10x the others).  The engine runs
   with a ``prefill_chunk_tokens`` budget, so that prompt is consumed in
   bounded chunks piggybacked beside the running decodes — the short
   clients' tokens keep flowing instead of stalling for one monolithic
   prefill;
5. the engine drains, and the per-request SLA stats (queue, prefill,
   time-to-first-token), chunked-prefill occupancy and the async counters
   (parks, wakeups, peak queue depth) are printed.

Run:  PYTHONPATH=src python examples/serve_async.py
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.flowbench import generate_dataset
from repro.models import DecoderLM, get_config
from repro.serving import AsyncEngine, RequestCancelled, RequestTimeout
from repro.tokenization import LogTokenizer

NUM_CLIENTS = 16
MAX_NEW_TOKENS = 32
LONG_CLIENT = 4  # this client's prompt is ~10x the others
PREFILL_CHUNK_TOKENS = 16


def build_model() -> tuple[DecoderLM, LogTokenizer, list[np.ndarray]]:
    """A small decoder LM over workflow-log sentences (no training needed)."""
    dataset = generate_dataset("1000genome", num_traces=2, seed=0)
    tokenizer = LogTokenizer.build_from_corpus(dataset.train.sentences())
    model = DecoderLM(get_config("gpt2"), tokenizer.vocab_size, rng=0)
    model.eval()
    sentences = dataset.train.sentences()
    rng = np.random.default_rng(7)
    prompts = [
        tokenizer.encode_causal(sentences[i % len(sentences)])[
            : int(rng.integers(6, 20))
        ]
        for i in range(NUM_CLIENTS)
    ]
    # One client arrives with a long prompt — the adversarial case chunked
    # prefill exists for: without a budget its whole-prompt prefill would
    # stall every running decode.
    prompts[LONG_CLIENT] = tokenizer.encode_causal(" ".join(sentences))[:160]
    return model, tokenizer, prompts


async def client(engine: AsyncEngine, i: int, prompt: np.ndarray, delay: float):
    """One serving client: arrive after ``delay``, generate, report timing."""
    await asyncio.sleep(delay)
    t0 = time.perf_counter()
    try:
        if i == 1:
            # This client streams: tokens arrive as the engine decodes them.
            tokens = []
            async for token in engine.stream(prompt, max_new_tokens=MAX_NEW_TOKENS):
                tokens.append(token)
            outcome = f"streamed {len(tokens)} tokens"
        elif i == 2:
            # This client gives up almost immediately.
            request = engine.submit(prompt, max_new_tokens=MAX_NEW_TOKENS)
            await asyncio.sleep(0.01)
            request.cancel()
            try:
                await request
                outcome = "finished before the cancel landed"
            except RequestCancelled as exc:
                outcome = f"cancelled after {len(exc.partial) - len(prompt)} tokens"
        elif i == 3:
            # This client carries a tight per-request timeout.
            try:
                await engine.generate(
                    prompt, max_new_tokens=MAX_NEW_TOKENS, timeout=0.05
                )
                outcome = "finished inside the timeout"
            except RequestTimeout as exc:
                outcome = f"timed out after {len(exc.partial) - len(prompt)} tokens"
        elif i == LONG_CLIENT:
            result = await engine.generate(prompt, max_new_tokens=MAX_NEW_TOKENS)
            outcome = (
                f"long prompt ({len(prompt)} tokens) chunk-prefilled, "
                f"generated {len(result) - len(prompt)}"
            )
        else:
            result = await engine.generate(prompt, max_new_tokens=MAX_NEW_TOKENS)
            outcome = f"generated {len(result) - len(prompt)} tokens"
    except Exception as exc:  # pragma: no cover - demo robustness
        outcome = f"failed: {exc}"
    wall = time.perf_counter() - t0
    print(f"  client {i:>2d}: {outcome:<38s} ({wall * 1000:7.1f} ms)")


async def serve(engine: AsyncEngine, prompts: list[np.ndarray]) -> None:
    arrival_rng = np.random.default_rng(11)
    delays = np.cumsum(arrival_rng.exponential(0.01, size=len(prompts)))
    await asyncio.gather(
        *(client(engine, i, p, float(delays[i])) for i, p in enumerate(prompts))
    )


def main() -> None:
    print("Building model and prompts...")
    model, _tokenizer, prompts = build_model()

    print(f"\nServing {NUM_CLIENTS} concurrent clients "
          f"(max_batch_rows=6, staggered arrivals):")
    engine = AsyncEngine(
        model,
        max_batch_rows=6,
        min_admit_rows=2,
        prefill_chunk_tokens=PREFILL_CHUNK_TOKENS,
    )
    t0 = time.perf_counter()
    asyncio.run(serve(engine, prompts))
    wall = time.perf_counter() - t0
    engine.shutdown(drain=True)

    stats = engine.stats
    sla = stats.sla_summary()
    print(f"\nServed {sla['requests']} requests in {wall:.2f}s "
          f"({stats.steps} decode steps, "
          f"{sla['mean_rows_per_step']:.2f} mean rows/step, "
          f"peak {sla['peak_rows']} rows)")
    print(f"  mean queue   : {sla['mean_queue_seconds'] * 1000:6.1f} ms")
    print(f"  mean prefill : {sla['mean_prefill_seconds'] * 1000:6.1f} ms")
    print(f"  mean TTFT    : {sla['mean_ttft_seconds'] * 1000:6.1f} ms")
    print(f"  chunked prefill: {sla['prefill_tokens']} prompt tokens in "
          f"{sla['prefill_chunks']} chunks (budget {PREFILL_CHUNK_TOKENS}/step, "
          f"mean {sla['mean_step_prefill_tokens']:.1f} prefill tokens/step "
          f"beside {sla['mean_step_decode_rows']:.1f} decode rows)")
    print(f"  cancelled={sla['cancelled']} timeouts={sla['timeouts']} "
          f"parks={sla['parks']} wakeups={sla['wakeups']} "
          f"peak_queue_depth={sla['peak_queue_depth']}")


if __name__ == "__main__":
    main()
